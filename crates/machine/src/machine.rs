//! The SPMD driver: spawns one OS thread per virtual processor and runs the
//! same program closure on each, wiring up the message channels and
//! collecting results and clock reports in processor order.

use std::time::Duration;

use crossbeam_channel::unbounded;

use crate::cost::{CostModel, SimClock};
use crate::message::Packet;
use crate::proc::Proc;
use crate::report::RunOutput;
use crate::topology::ProcGrid;

/// A simulated coarse-grained distributed memory parallel machine: a logical
/// processor grid plus the two-level cost model its clocks charge against.
#[derive(Debug, Clone)]
pub struct Machine {
    grid: ProcGrid,
    cost: CostModel,
    recv_timeout: Duration,
    tracing: bool,
}

impl Machine {
    /// Build a machine over `grid` with cost constants `cost`.
    pub fn new(grid: ProcGrid, cost: CostModel) -> Self {
        Machine { grid, cost, recv_timeout: Duration::from_secs(120), tracing: false }
    }

    /// Enable per-processor category-span tracing (see [`crate::trace`]).
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Convenience: a one-dimensional machine of `p` processors with the
    /// CM-5-flavoured default cost model.
    pub fn line(p: usize) -> Self {
        Self::new(ProcGrid::line(p), CostModel::cm5())
    }

    /// Override the deadlock-detection receive timeout (default 120 s).
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// The logical processor grid.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total processor count.
    pub fn nprocs(&self) -> usize {
        self.grid.nprocs()
    }

    /// Run `program` on every virtual processor simultaneously and collect
    /// each processor's return value and clock report, indexed by processor
    /// id.
    ///
    /// The closure receives a [`Proc`] handle carrying the processor's
    /// identity, clock, and message endpoints. Real OS threads give real
    /// parallelism; determinism of results is up to the program (all
    /// algorithms in this workspace are deterministic given their inputs).
    ///
    /// # Panics
    /// Propagates the first panicking processor's panic. Also panics if a
    /// processor finishes with unconsumed messages in its mailbox, which
    /// indicates mismatched send/recv structure.
    pub fn run<R, F>(&self, program: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        let p = self.nprocs();
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Packet>();
            txs.push(tx);
            rxs.push(rx);
        }

        type ProcResult<R> =
            (R, crate::cost::ClockReport, usize, Vec<crate::trace::Span>, Vec<u64>);
        let mut out: Vec<Option<ProcResult<R>>> = (0..p).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (id, rx) in rxs.into_iter().enumerate() {
                let txs = &txs;
                let grid = &self.grid;
                let cost = self.cost;
                let program = &program;
                let timeout = self.recv_timeout;
                let tracing = self.tracing;
                handles.push(scope.spawn(move || {
                    let mut clock = SimClock::new(cost);
                    if tracing {
                        clock.enable_trace();
                    }
                    let mut proc = Proc::new(id, grid, clock, txs, rx, timeout);
                    let result = program(&mut proc);
                    let leftover = proc.leftover_messages();
                    let (mut clock, comm_row) = proc.into_clock_and_comm();
                    let trace = clock.take_trace();
                    (result, clock.report(), leftover, trace, comm_row)
                }));
            }
            for (id, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(triple) => out[id] = Some(triple),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut clocks = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        let mut comm = Vec::with_capacity(p);
        for (id, slot) in out.into_iter().enumerate() {
            let (r, c, leftover, trace, comm_row) = slot.expect("every processor joined");
            assert_eq!(
                leftover, 0,
                "proc {id} finished with {leftover} unconsumed message(s) — mismatched send/recv"
            );
            results.push(r);
            clocks.push(c);
            traces.push(trace);
            comm.push(comm_row);
        }
        let mut run = RunOutput::new(results, clocks);
        run.traces = traces;
        run.comm_matrix = comm;
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Category;
    use crate::proc::tags;

    #[test]
    fn run_returns_results_in_proc_order() {
        let m = Machine::new(ProcGrid::line(8), CostModel::zero());
        let out = m.run(|p| p.id() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn ring_pass_moves_data_and_charges_time() {
        let m = Machine::new(
            ProcGrid::line(4),
            CostModel { delta_ns: 0.0, tau_ns: 10.0, mu_ns: 1.0, ..CostModel::zero() },
        );
        let out = m.run(|p| {
            let next = (p.id() + 1) % 4;
            let prev = (p.id() + 3) % 4;
            p.send(next, tags::USER, vec![p.id() as i32]);
            let got: Vec<i32> = p.recv(prev, tags::USER);
            got[0]
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
        // Each proc sent one 1-word message: τ + μ = 11 ns of send time, and
        // the received message arrived at its sender's 11 ns mark.
        for c in &out.clocks {
            assert!(c.now_ns >= 11.0);
            assert_eq!(c.words_sent, 1);
            assert_eq!(c.startups, 1);
        }
    }

    #[test]
    fn self_send_is_free() {
        let m = Machine::new(ProcGrid::line(2), CostModel::cm5());
        let out = m.run(|p| {
            p.send(p.id(), tags::USER, vec![7i32, 8, 9]);
            let v: Vec<i32> = p.recv(p.id(), tags::USER);
            v.len()
        });
        assert_eq!(out.results, vec![3, 3]);
        for c in &out.clocks {
            assert_eq!(c.now_ns, 0.0);
            assert_eq!(c.words_sent, 0);
        }
    }

    #[test]
    fn receiver_waits_until_arrival() {
        let m = Machine::new(
            ProcGrid::line(2),
            CostModel { delta_ns: 1.0, tau_ns: 100.0, mu_ns: 0.0, ..CostModel::zero() },
        );
        let out = m.run(|p| {
            if p.id() == 0 {
                p.charge_ops(50); // sender is busy 50 ns first
                p.send(1, tags::USER, vec![1i32]);
                p.clock_ref().now_ns()
            } else {
                let _: Vec<i32> = p.recv(0, tags::USER);
                p.clock_ref().now_ns()
            }
        });
        assert_eq!(out.results[0], 150.0); // 50 + τ
        assert_eq!(out.results[1], 150.0); // waited until arrival
    }

    #[test]
    fn clock_sync_max_aligns_without_charging() {
        let m = Machine::new(ProcGrid::line(5), CostModel::zero());
        let out = m.run(|p| {
            let t = p.id() as f64 * 10.0;
            p.clock().fast_forward(t);
            let world = p.world();
            p.clock_sync_max(&world);
            p.clock_ref().now_ns()
        });
        for t in out.results {
            assert_eq!(t, 40.0);
        }
        for c in &out.clocks {
            for cat in Category::ALL {
                assert_eq!(c.cat_ns(cat), 0.0, "sync must not charge {cat}");
            }
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let m = Machine::new(ProcGrid::line(2), CostModel::zero());
        let out = m.run(|p| {
            if p.id() == 0 {
                p.send(1, tags::USER + 1, vec![1i32]);
                p.send(1, tags::USER, vec![2i32]);
                0
            } else {
                // Receive in the opposite order of sending.
                let a: Vec<i32> = p.recv(0, tags::USER);
                let b: Vec<i32> = p.recv(0, tags::USER + 1);
                (a[0] * 10 + b[0]) as usize
            }
        });
        assert_eq!(out.results[1], 21);
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn leftover_messages_are_detected() {
        let m = Machine::new(ProcGrid::line(2), CostModel::zero());
        m.run(|p| {
            if p.id() == 0 {
                p.send(1, tags::USER, vec![1i32]);
                p.send(1, tags::USER + 1, vec![2i32]);
            } else {
                // Only consume one of the two; the probe for USER+2 would
                // hang, so consume USER and leave USER+1 in the channel...
                let _: Vec<i32> = p.recv(0, tags::USER + 1);
                // ...which lands in the mailbox while searching.
            }
        });
    }

    #[test]
    fn two_d_grid_axis_groups_communicate_independently() {
        let m = Machine::new(ProcGrid::new(&[2, 2]), CostModel::zero());
        let out = m.run(|p| {
            // Exchange coordinate products along each axis.
            let g0 = p.axis_group(0);
            let partner0 = g0.id_of(1 - g0.my_rank());
            p.send(partner0, tags::USER, vec![p.id() as i32]);
            let from0: Vec<i32> = p.recv(partner0, tags::USER);
            let g1 = p.axis_group(1);
            let partner1 = g1.id_of(1 - g1.my_rank());
            p.send(partner1, tags::USER + 1, vec![p.id() as i32]);
            let from1: Vec<i32> = p.recv(partner1, tags::USER + 1);
            (from0[0], from1[0])
        });
        // Grid [P0=2, P1=2]: id = p0 + 2*p1.
        assert_eq!(out.results[0], (1, 2));
        assert_eq!(out.results[3], (2, 1));
    }
}
