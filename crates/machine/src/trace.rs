//! Execution tracing: per-processor spans of simulated time, partitioned by
//! clock category, with a text Gantt renderer.
//!
//! When tracing is enabled on a [`crate::Machine`], every category
//! transition on a processor's clock closes the previous span and opens a
//! new one, so the spans of one processor partition its simulated timeline
//! exactly. The renderer turns that into the classic stage picture: the
//! ranking stage's local scan, the prefix-reduction-sum wavefront, and the
//! many-to-many exchange, per processor.

use crate::cost::Category;

/// One contiguous stretch of simulated time a processor spent in one
/// category (including any waiting attributed to it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The category active during the span.
    pub category: Category,
    /// Span start, nanoseconds.
    pub start_ns: f64,
    /// Span end, nanoseconds.
    pub end_ns: f64,
}

impl Span {
    /// Span length in nanoseconds.
    pub fn len_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// Single-letter legend used by the Gantt renderer.
pub fn category_glyph(cat: Category) -> char {
    match cat {
        Category::LocalComp => 'L',
        Category::PrefixReductionSum => 'P',
        Category::ManyToMany => 'M',
        Category::RedistDetect => 'D',
        Category::RedistComm => 'R',
        Category::Other => 'o',
    }
}

/// Render per-processor span lists as a fixed-width text Gantt chart.
///
/// Each row is one processor; each column covers `total/cols` nanoseconds
/// and shows the glyph of the category that dominates it (idle time — spans
/// never recorded — shows as `.`).
pub fn render_gantt(traces: &[Vec<Span>], cols: usize) -> String {
    assert!(cols > 0, "need at least one column");
    let t_max = traces
        .iter()
        .flat_map(|t| t.iter().map(|s| s.end_ns))
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    if t_max <= 0.0 {
        out.push_str("(no simulated time elapsed)\n");
        return out;
    }
    let col_ns = t_max / cols as f64;
    for (pid, spans) in traces.iter().enumerate() {
        // Dominant category per column. A span ending exactly on a column
        // boundary must contribute nothing past it, but `end_ns / col_ns`
        // is inexact in floating point, so a `ceil`-derived last column can
        // overshoot and a sliver of rounding error would paint an idle
        // column. Instead walk columns until the span is exhausted and
        // ignore overlaps below a rounding-noise tolerance.
        let eps = col_ns * 1e-9;
        let mut weights = vec![[0.0f64; Category::ALL.len()]; cols];
        for s in spans {
            let first = ((s.start_ns / col_ns) as usize).min(cols - 1);
            for (c, w) in weights.iter_mut().enumerate().skip(first) {
                let lo = (c as f64) * col_ns;
                if lo + eps >= s.end_ns {
                    break;
                }
                let hi = lo + col_ns;
                let overlap = s.end_ns.min(hi) - s.start_ns.max(lo);
                if overlap > eps {
                    w[s.category.index()] += overlap;
                }
            }
        }
        out.push_str(&format!("p{pid:<3} |"));
        for w in &weights {
            let (best, &weight) = w
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            if weight <= 0.0 {
                out.push('.');
            } else {
                out.push(category_glyph(Category::ALL[best]));
            }
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "     0 {:>width$.3} ms\nlegend: L=local P=prefix-reduction-sum M=many-to-many D=detect R=redist o=other .=idle\n",
        t_max / 1e6,
        width = cols.saturating_sub(2),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: Category, a: f64, b: f64) -> Span {
        Span {
            category: cat,
            start_ns: a,
            end_ns: b,
        }
    }

    #[test]
    fn gantt_shows_dominant_category_per_column() {
        let traces = vec![
            vec![
                span(Category::LocalComp, 0.0, 50.0),
                span(Category::ManyToMany, 50.0, 100.0),
            ],
            vec![span(Category::PrefixReductionSum, 0.0, 100.0)],
        ];
        let g = render_gantt(&traces, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].contains("LLLLLMMMMM"), "{g}");
        assert!(lines[1].contains("PPPPPPPPPP"), "{g}");
    }

    #[test]
    fn idle_time_is_dotted() {
        let traces = vec![vec![span(Category::LocalComp, 50.0, 100.0)]];
        let g = render_gantt(&traces, 10);
        assert!(g.lines().next().unwrap().contains(".....LLLLL"), "{g}");
    }

    #[test]
    fn span_ending_on_column_boundary_does_not_bleed() {
        // col_ns = 0.3 / 3 is inexact, so column 2's left edge lands a hair
        // below 0.2 and the old ceil-based range painted it with a sliver
        // of the [0, 0.2] span. The span covers exactly columns 0 and 1.
        let traces = vec![
            vec![span(Category::LocalComp, 0.0, 0.2)],
            vec![span(Category::PrefixReductionSum, 0.0, 0.3)],
        ];
        let g = render_gantt(&traces, 3);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].contains("LL."), "boundary span bled: {g}");
        assert!(lines[1].contains("PPP"), "{g}");
    }

    #[test]
    fn empty_trace_renders_gracefully() {
        let g = render_gantt(&[vec![]], 10);
        assert!(g.contains("no simulated time"));
    }

    #[test]
    fn glyphs_are_unique() {
        let mut glyphs: Vec<char> = Category::ALL.iter().map(|&c| category_glyph(c)).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), Category::ALL.len());
    }
}
