//! Binomial-tree broadcast.

use std::sync::Arc;

use crate::message::Wire;
use crate::proc::{tags, Group, Proc};

/// Broadcast `data` (significant only on the member with group rank `root`)
/// to all group members; every member returns the broadcast vector.
///
/// Binomial tree: `⌈log₂ P⌉` rounds, each doubling the set of informed
/// processors, `Θ((τ + μ·m)·log P)` on the critical path.
///
/// Internally the payload travels as `Arc<Vec<T>>`: an interior node's
/// fan-out to all of its children shares the one buffer it received instead
/// of deep-copying it per edge. Charges are per-edge and unchanged — only
/// the real-machine copies disappear.
pub fn broadcast<T: Wire>(proc: &mut Proc, group: &Group, root: usize, data: Vec<T>) -> Vec<T> {
    let n = group.size();
    assert!(root < n, "root rank out of range");
    if n == 1 {
        return data;
    }
    // Rotate ranks so the root is virtual rank 0.
    let me = (group.my_rank() + n - root) % n;

    let buf = proc.with_stage("bcast.binomial", |proc| {
        let mut buf = Arc::new(if me == 0 { data } else { Vec::new() });

        // Highest power of two <= n-1 determines the first round in which a
        // receiver can exist. Virtual rank v receives from v - 2^k where 2^k
        // is the highest set bit of v, in round k; it forwards in later
        // rounds.
        let rounds = usize::BITS - (n - 1).leading_zeros();
        if me != 0 {
            let k = usize::BITS - 1 - me.leading_zeros();
            let src_virtual = me - (1 << k);
            let src = group.id_of((src_virtual + root) % n);
            buf = proc.recv(src, tags::BCAST);
        }
        let first_send_round = if me == 0 {
            0
        } else {
            (usize::BITS - me.leading_zeros()) as usize
        };
        for k in first_send_round..rounds as usize {
            let dst_virtual = me + (1 << k);
            if dst_virtual < n {
                let dst = group.id_of((dst_virtual + root) % n);
                // The payload is the shared inner Arc; each send still wraps
                // it in its own (unique) outer Arc, so the receiver's
                // in-place unwrap stays on the zero-copy path.
                proc.send(dst, tags::BCAST, Arc::clone(&buf));
            }
        }
        buf
    });
    Arc::try_unwrap(buf).unwrap_or_else(|shared| (*shared).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::machine::Machine;
    use crate::topology::ProcGrid;

    #[test]
    fn broadcast_reaches_everyone_from_any_root() {
        for p in [1, 2, 3, 5, 8, 13] {
            for root in [0, p / 2, p - 1] {
                let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
                let out = machine.run(move |proc| {
                    let g = proc.world();
                    let data = if g.my_rank() == root {
                        vec![9i32, 8, 7]
                    } else {
                        Vec::new()
                    };
                    broadcast(proc, &g, root, data)
                });
                for (r, v) in out.results.iter().enumerate() {
                    assert_eq!(v, &vec![9, 8, 7], "p={p} root={root} rank={r}");
                }
            }
        }
    }

    #[test]
    fn broadcast_critical_path_is_logarithmic() {
        let model = CostModel {
            delta_ns: 0.0,
            tau_ns: 1000.0,
            mu_ns: 0.0,
            ..CostModel::zero()
        };
        let time = |p: usize| {
            let machine = Machine::new(ProcGrid::line(p), model);
            let out = machine.run(|proc| {
                let g = proc.world();
                let data = if g.my_rank() == 0 {
                    vec![1i32]
                } else {
                    Vec::new()
                };
                broadcast(proc, &g, 0, data);
            });
            out.max_time_ms()
        };
        // 8 procs: depth 3 tree; root serializes its 3 sends, so the worst
        // leaf sees at most ~(3+2+1)τ but far less than the linear 7τ.
        assert!(time(8) < 7.0 * 1000.0 / 1e6);
        assert!(time(8) >= 3.0 * 1000.0 / 1e6);
    }
}
