//! Collective communication primitives built on the point-to-point layer.
//!
//! Everything the paper's algorithms need: the vector prefix-reduction-sum
//! of Section 5.1 (direct and split algorithms), many-to-many personalized
//! communication with linear permutation scheduling (Section 7, [9]), and
//! the broadcast/gather glue used to stage test data onto the machine.
//!
//! All collectives charge the ambient clock [`Category`](crate::Category) of
//! the calling processor; callers pick the category (e.g. the ranking stage
//! wraps prefix-reduction-sum in `Category::PrefixReductionSum`).

mod alltoallv;
mod broadcast;
mod gather;
mod reduce;
mod scan;

pub use alltoallv::{
    alltoallv, alltoallv_planned, alltoallv_pooled, alltoallv_two_phase, A2aPlan, A2aSchedule,
};
pub use broadcast::broadcast;
pub use gather::{allgather, gather_to_root, scatter_from_root};
pub use reduce::{allreduce_sum, allreduce_with};
pub use scan::{prefix_reduction_sum, prefix_scan_with, PrsAlgorithm};

use crate::message::Wire;

/// Element type the arithmetic collectives (scan, reduce) operate on.
///
/// The paper's ranking arrays hold element counts; `i32` matches the CM-5's
/// 4-byte integers, which keeps the charged message volume `μ·M` faithful to
/// the paper's accounting.
pub trait Num:
    Wire
    + Default
    + PartialEq
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::AddAssign
    + std::ops::Sub<Output = Self>
{
}

impl<T> Num for T where
    T: Wire
        + Default
        + PartialEq
        + PartialOrd
        + std::ops::Add<Output = Self>
        + std::ops::AddAssign
        + std::ops::Sub<Output = Self>
{
}
