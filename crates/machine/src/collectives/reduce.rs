//! Element-wise all-reduce.

use crate::collectives::broadcast::broadcast;
use crate::collectives::scan::{prefix_reduction_sum, PrsAlgorithm};
use crate::collectives::Num;
use crate::message::Wire;
use crate::proc::{tags, Group, Proc};

/// Element-wise sum of `v` across the group, replicated on every member.
///
/// Implemented as the reduction half of the fused prefix-reduction-sum
/// primitive (the paper's CM-5 code used a control-network global op here;
/// footnote 2 notes the two primitives need not be fused when hardware
/// support exists — our software machine always pays for the exchange).
pub fn allreduce_sum<T: Num>(
    proc: &mut Proc,
    group: &Group,
    v: &[T],
    algo: PrsAlgorithm,
) -> Vec<T> {
    prefix_reduction_sum(proc, group, v, algo).1
}

/// Element-wise all-reduce under an arbitrary associative operation
/// (max, min, logical and, …), for element types without subtraction.
///
/// Hillis–Steele inclusive fold (`⌈log₂ P⌉` rounds of the whole vector)
/// followed by a broadcast of the last rank's full fold:
/// `Θ((τ + μM) log P)`.
pub fn allreduce_with<T: Wire>(
    proc: &mut Proc,
    group: &Group,
    v: &[T],
    op: impl Fn(T, T) -> T,
) -> Vec<T> {
    let n = group.size();
    let me = group.my_rank();
    let mut acc = v.to_vec();
    proc.with_stage("reduce.fold", |proc| {
        let mut d = 1usize;
        while d < n {
            if me + d < n {
                proc.send(group.id_of(me + d), tags::REDUCE, acc.clone());
            }
            if me >= d {
                let their: Vec<T> = proc.recv(group.id_of(me - d), tags::REDUCE);
                for (a, b) in acc.iter_mut().zip(&their) {
                    *a = op(*b, *a);
                }
                proc.charge_ops(v.len());
            }
            d *= 2;
        }
    });
    if n == 1 {
        return acc;
    }
    let full = if me == n - 1 { acc } else { Vec::new() };
    broadcast(proc, group, n - 1, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::machine::Machine;
    use crate::topology::ProcGrid;

    #[test]
    fn allreduce_with_max_and_min() {
        for p in [1, 2, 3, 7, 8] {
            let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
            let out = machine.run(|proc| {
                let g = proc.world();
                let v = vec![proc.id() as i32, -(proc.id() as i32)];
                let mx = allreduce_with(proc, &g, &v, i32::max);
                let mn = allreduce_with(proc, &g, &v, i32::min);
                (mx, mn)
            });
            for (mx, mn) in out.results {
                assert_eq!(mx, vec![(p - 1) as i32, 0], "p={p}");
                assert_eq!(mn, vec![0, -((p - 1) as i32)], "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_with_is_order_correct_for_noncommutative_ops() {
        // 2x2 matrix product: associative but noncommutative, so the result
        // is only right if ranks are folded in rank order.
        fn matmul(a: [i64; 4], b: [i64; 4]) -> [i64; 4] {
            [
                a[0] * b[0] + a[1] * b[2],
                a[0] * b[1] + a[1] * b[3],
                a[2] * b[0] + a[3] * b[2],
                a[2] * b[1] + a[3] * b[3],
            ]
        }
        for p in [2usize, 3, 5, 8] {
            let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
            let out = machine.run(|proc| {
                let g = proc.world();
                let r = proc.id() as i64;
                let v = vec![[1, r + 1, 0, 1], [0, 1, r + 1, 1]];
                allreduce_with(proc, &g, &v, matmul)
            });
            let mut want = vec![[1i64, 1, 0, 1], [0, 1, 1, 1]];
            for r in 1..p as i64 {
                want[0] = matmul(want[0], [1, r + 1, 0, 1]);
                want[1] = matmul(want[1], [0, 1, r + 1, 1]);
            }
            for got in out.results {
                assert_eq!(got, want, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_sums_across_members() {
        for p in [1, 2, 5, 8] {
            let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
            let out = machine.run(|proc| {
                let g = proc.world();
                let v = vec![proc.id() as i32, 1];
                allreduce_sum(proc, &g, &v, PrsAlgorithm::Direct)
            });
            let want = vec![(p * (p - 1) / 2) as i32, p as i32];
            for r in out.results {
                assert_eq!(r, want, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_on_axis_groups_is_independent() {
        // 2x3 grid (dims [3,2]): reduce along dim 0 sums triples of procs.
        let machine = Machine::new(ProcGrid::new(&[3, 2]), CostModel::zero());
        let out = machine.run(|proc| {
            let g = proc.axis_group(0);
            allreduce_sum(proc, &g, &[1i32], PrsAlgorithm::Direct)
        });
        for r in out.results {
            assert_eq!(r, vec![3]);
        }
    }
}
