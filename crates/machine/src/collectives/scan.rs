//! Vector prefix-reduction-sum (Section 5.1).
//!
//! Each group member holds a local vector `V_r[0..M]`. The primitive computes
//! simultaneously, element-wise across the group:
//!
//! * the **exclusive prefix sum** `F_r[j] = Σ_{k<r} V_k[j]` (rank 0 gets all
//!   zeros), and
//! * the **reduction sum** `R[j] = Σ_k V_k[j]`, replicated on every member.
//!
//! Combining the two primitives halves the number of message start-ups
//! compared with running them separately, which is the point of the fused
//! primitive in the paper.
//!
//! Two algorithms are provided, mirroring the paper's direct/split choice:
//!
//! * [`PrsAlgorithm::Direct`] — bidirectional Hillis–Steele recursive
//!   doubling. `⌈log₂ P⌉` rounds, each moving the whole `M`-element vector
//!   in both directions: cost `Θ((τ + μM)·log P)`. Best for small vectors
//!   or few processors.
//! * [`PrsAlgorithm::Split`] — transpose-based: the vector is split into `P`
//!   chunks, chunk `j` is collected by rank `j`, which computes the prefix
//!   and total across the rank axis for its chunk and returns them. Cost
//!   `Θ(P·τ + μM)` — the per-word volume no longer multiplies with `log P`,
//!   so it wins as `M` grows. (The paper's [6] uses a recursive-halving
//!   variant with `τ·log P` start-ups; the transpose variant exposes the
//!   same `τ`-count vs `μM`-volume trade-off. See DESIGN.md.)
//! * [`PrsAlgorithm::Auto`] — the paper's CM-5 selection rule (Section 7):
//!   direct if the group has at most 4 members or the vector is shorter than
//!   the group, split otherwise.

use crate::collectives::Num;
use crate::proc::{tags, Group, Proc};

/// Algorithm choice for [`prefix_reduction_sum`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrsAlgorithm {
    /// Recursive-doubling on whole vectors: `Θ((τ + μM) log P)`.
    Direct,
    /// Transpose-based chunked algorithm: `Θ(P·τ + μM)`.
    Split,
    /// The paper's selection heuristic: `Direct` iff `P ≤ 4` or `M < P`.
    Auto,
    /// CM-5-style control network (the paper's footnote 2): the scan runs
    /// on dedicated hardware in `O(M)` time with a small constant,
    /// independent of `P`. Charged as two hardware scans (the prefix and
    /// the reduction need not be fused when hardware support exists):
    /// `2·(cn_τ + cn_μ·M)`.
    Hardware,
}

impl PrsAlgorithm {
    /// Resolve `Auto` for a group of `p` members and vectors of `m` elements.
    pub fn resolve(self, p: usize, m: usize) -> PrsAlgorithm {
        match self {
            PrsAlgorithm::Auto => {
                if p <= 4 || m < p {
                    PrsAlgorithm::Direct
                } else {
                    PrsAlgorithm::Split
                }
            }
            other => other,
        }
    }
}

/// Compute the element-wise (exclusive prefix, total) of `v` across `group`.
///
/// Returns `(prefix, total)`, both of length `v.len()`. Every member must
/// call with the same vector length and the same algorithm.
///
/// Charges message traffic and the split algorithm's local accumulation work
/// to the calling processor's ambient clock category.
pub fn prefix_reduction_sum<T: Num>(
    proc: &mut Proc,
    group: &Group,
    v: &[T],
    algo: PrsAlgorithm,
) -> (Vec<T>, Vec<T>) {
    let n = group.size();
    if n == 1 {
        return (vec![T::default(); v.len()], v.to_vec());
    }
    match algo.resolve(n, v.len()) {
        PrsAlgorithm::Direct => proc.with_stage("prs.direct", |proc| direct(proc, group, v)),
        PrsAlgorithm::Split => proc.with_stage("prs.split", |proc| split(proc, group, v)),
        PrsAlgorithm::Hardware => proc.with_stage("prs.hw", |proc| {
            // Move the data with the software algorithm but charge nothing
            // for it; then charge what the control network would cost.
            let out = proc.with_uncharged_comm(|proc| split(proc, group, v));
            proc.clock().charge_hw_scan(v.len());
            proc.clock().charge_hw_scan(v.len());
            out
        }),
        PrsAlgorithm::Auto => unreachable!("resolved above"),
    }
}

/// Bidirectional Hillis–Steele: maintain `up` (inclusive sum over the window
/// ending at my rank) and `down` (inclusive sum over the window starting at
/// my rank). After `⌈log₂ n⌉` doubling rounds, `up` is the inclusive prefix
/// and `down` the inclusive suffix; then `prefix = up - v` and
/// `total = up + down - v`.
fn direct<T: Num>(proc: &mut Proc, group: &Group, v: &[T]) -> (Vec<T>, Vec<T>) {
    let n = group.size();
    let me = group.my_rank();
    let mut up = v.to_vec();
    let mut down = v.to_vec();

    let mut d = 1usize;
    while d < n {
        // Sends first so no round deadlocks.
        if me + d < n {
            proc.send(group.id_of(me + d), tags::SCAN, up.clone());
        }
        if me >= d {
            proc.send(group.id_of(me - d), tags::SCAN, down.clone());
        }
        if me >= d {
            let their_up: Vec<T> = proc.recv(group.id_of(me - d), tags::SCAN);
            for (a, b) in up.iter_mut().zip(&their_up) {
                *a += *b;
            }
            proc.charge_ops(v.len());
        }
        if me + d < n {
            let their_down: Vec<T> = proc.recv(group.id_of(me + d), tags::SCAN);
            for (a, b) in down.iter_mut().zip(&their_down) {
                *a += *b;
            }
            proc.charge_ops(v.len());
        }
        d *= 2;
    }

    let prefix: Vec<T> = up.iter().zip(v).map(|(&u, &x)| u - x).collect();
    let total: Vec<T> = up
        .iter()
        .zip(&down)
        .zip(v)
        .map(|((&u, &w), &x)| u + w - x)
        .collect();
    proc.charge_ops(2 * v.len());
    (prefix, total)
}

/// Element-wise *exclusive* prefix scan across the group under an arbitrary
/// associative operation, seeded with `identity` on rank 0.
///
/// For operations without a subtraction inverse (max, segmented-sum
/// monoids, …) the direct algorithm's `up - v` trick is unavailable, so
/// this computes the inclusive Hillis–Steele scan and shifts it one rank
/// (`⌈log₂ P⌉ + 1` rounds of the whole vector). Returns only the prefix;
/// pair with [`crate::collectives::allreduce_with`] when the total is also
/// needed.
pub fn prefix_scan_with<T: crate::message::Wire>(
    proc: &mut Proc,
    group: &Group,
    v: &[T],
    identity: T,
    op: impl Fn(T, T) -> T,
) -> Vec<T> {
    let n = group.size();
    let me = group.my_rank();
    if n == 1 {
        return vec![identity; v.len()];
    }
    // Inclusive Hillis–Steele under `op` (receive side folds earlier ranks
    // on the left, preserving rank order for non-commutative ops).
    let mut acc = v.to_vec();
    let mut d = 1usize;
    while d < n {
        if me + d < n {
            proc.send(group.id_of(me + d), tags::SCAN, acc.clone());
        }
        if me >= d {
            let their: Vec<T> = proc.recv(group.id_of(me - d), tags::SCAN);
            for (a, b) in acc.iter_mut().zip(&their) {
                *a = op(*b, *a);
            }
            proc.charge_ops(v.len());
        }
        d *= 2;
    }
    // Shift by one rank: exclusive_r = inclusive_{r-1}; rank 0 gets the
    // identity.
    if me + 1 < n {
        proc.send(group.id_of(me + 1), tags::SCAN, acc);
    }
    if me == 0 {
        vec![identity; v.len()]
    } else {
        proc.recv(group.id_of(me - 1), tags::SCAN)
    }
}

/// Even chunk boundaries: chunk `j` of a length-`m` vector split `n` ways is
/// `[start(j), start(j+1))` where the first `m % n` chunks get one extra
/// element.
fn chunk_bounds(m: usize, n: usize, j: usize) -> (usize, usize) {
    let base = m / n;
    let rem = m % n;
    let start = j * base + j.min(rem);
    let len = base + usize::from(j < rem);
    (start, start + len)
}

/// Transpose-based split algorithm.
fn split<T: Num>(proc: &mut Proc, group: &Group, v: &[T]) -> (Vec<T>, Vec<T>) {
    let n = group.size();
    let me = group.my_rank();
    let m = v.len();
    let (my_lo, my_hi) = chunk_bounds(m, n, me);
    let my_len = my_hi - my_lo;

    // Round 1 (transpose): rank j collects chunk j from every member.
    // Linear permutation order staggers partners.
    let mut chunks_by_src: Vec<Vec<T>> = vec![Vec::new(); n];
    chunks_by_src[me] = v[my_lo..my_hi].to_vec();
    for k in 1..n {
        let dst = (me + k) % n;
        let src = (me + n - k) % n;
        let (lo, hi) = chunk_bounds(m, n, dst);
        proc.send(group.id_of(dst), tags::SCAN, v[lo..hi].to_vec());
        chunks_by_src[src] = proc.recv(group.id_of(src), tags::SCAN);
    }

    // Local: exclusive prefix across the source-rank axis, per element of my
    // chunk, plus the grand total. n·(M/n) = M accumulation steps.
    let mut running = vec![T::default(); my_len];
    let mut prefix_for_src: Vec<Vec<T>> = Vec::with_capacity(n);
    for chunk in &chunks_by_src {
        prefix_for_src.push(running.clone());
        for (acc, &x) in running.iter_mut().zip(chunk) {
            *acc += x;
        }
    }
    let total_chunk = running;
    proc.charge_ops(n * my_len);

    // Round 2: return (prefix chunk ++ total chunk) to each source in one
    // message — the fused primitive's start-up saving.
    let mut prefix = vec![T::default(); m];
    let mut total = vec![T::default(); m];
    {
        // My own chunk, free.
        let mine = &prefix_for_src[me];
        prefix[my_lo..my_hi].copy_from_slice(mine);
        total[my_lo..my_hi].copy_from_slice(&total_chunk);
    }
    for k in 1..n {
        let dst = (me + k) % n;
        let src = (me + n - k) % n;
        let mut payload = prefix_for_src[dst].clone();
        payload.extend_from_slice(&total_chunk);
        proc.send(group.id_of(dst), tags::SCAN, payload);

        let back: Vec<T> = proc.recv(group.id_of(src), tags::SCAN);
        let (lo, hi) = chunk_bounds(m, n, src);
        let len = hi - lo;
        debug_assert_eq!(back.len(), 2 * len);
        prefix[lo..hi].copy_from_slice(&back[..len]);
        total[lo..hi].copy_from_slice(&back[len..]);
    }
    (prefix, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Category, CostModel};
    use crate::machine::Machine;
    use crate::topology::ProcGrid;

    fn serial_prs(vectors: &[Vec<i32>]) -> (Vec<Vec<i32>>, Vec<i32>) {
        let m = vectors[0].len();
        let mut prefixes = Vec::new();
        let mut acc = vec![0i32; m];
        for v in vectors {
            prefixes.push(acc.clone());
            for (a, b) in acc.iter_mut().zip(v) {
                *a += b;
            }
        }
        (prefixes, acc)
    }

    fn check(p: usize, m: usize, algo: PrsAlgorithm) {
        let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
        let inputs: Vec<Vec<i32>> = (0..p)
            .map(|r| (0..m).map(|j| (r * 31 + j * 7 + 1) as i32 % 97).collect())
            .collect();
        let (want_prefix, want_total) = serial_prs(&inputs);
        let inputs_ref = &inputs;
        let out = machine.run(move |proc| {
            let g = proc.world();
            let v = inputs_ref[proc.id()].clone();
            prefix_reduction_sum(proc, &g, &v, algo)
        });
        for (r, (prefix, total)) in out.results.iter().enumerate() {
            assert_eq!(
                prefix, &want_prefix[r],
                "prefix mismatch p={p} m={m} rank {r} {algo:?}"
            );
            assert_eq!(
                total, &want_total,
                "total mismatch p={p} m={m} rank {r} {algo:?}"
            );
        }
    }

    #[test]
    fn direct_matches_serial_various_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 13, 16] {
            for m in [0, 1, 5, 64] {
                check(p, m, PrsAlgorithm::Direct);
            }
        }
    }

    #[test]
    fn split_matches_serial_various_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 13, 16] {
            for m in [0, 1, 5, 17, 64] {
                check(p, m, PrsAlgorithm::Split);
            }
        }
    }

    #[test]
    fn auto_matches_serial() {
        for (p, m) in [(2, 100), (16, 8), (16, 1024)] {
            check(p, m, PrsAlgorithm::Auto);
        }
    }

    #[test]
    fn hardware_matches_serial() {
        for (p, m) in [(1, 8), (3, 7), (16, 256)] {
            check(p, m, PrsAlgorithm::Hardware);
        }
    }

    /// Hardware scans charge the control-network model only: no message
    /// words, time = 2*(cn_tau + cn_mu*M), independent of P.
    #[test]
    fn hardware_charges_control_network_model() {
        let model = CostModel::cm5();
        for p in [2usize, 16] {
            let machine = Machine::new(ProcGrid::line(p), model);
            let m = 100usize;
            let out = machine.run(move |proc| {
                proc.clock().set_category(Category::PrefixReductionSum);
                let g = proc.world();
                let v = vec![1i32; m];
                prefix_reduction_sum(proc, &g, &v, PrsAlgorithm::Hardware);
            });
            assert_eq!(out.total_words_sent(), 0, "p={p}");
            let want_ms = 2.0 * (model.cn_tau_ns + model.cn_mu_ns * m as f64) / 1e6;
            let got = out.max_cat_ms(Category::PrefixReductionSum);
            assert!(
                (got - want_ms).abs() < 1e-9,
                "p={p}: got {got}, want {want_ms}"
            );
        }
    }

    #[test]
    fn auto_heuristic_matches_paper_rule() {
        // direct if P <= 4 or M < P, split otherwise
        assert_eq!(
            PrsAlgorithm::Auto.resolve(4, 1_000_000),
            PrsAlgorithm::Direct
        );
        assert_eq!(PrsAlgorithm::Auto.resolve(16, 8), PrsAlgorithm::Direct);
        assert_eq!(PrsAlgorithm::Auto.resolve(16, 16), PrsAlgorithm::Split);
        assert_eq!(PrsAlgorithm::Auto.resolve(256, 1024), PrsAlgorithm::Split);
        assert_eq!(
            PrsAlgorithm::Direct.resolve(256, 1024),
            PrsAlgorithm::Direct
        );
    }

    #[test]
    fn prefix_scan_with_matches_serial_for_max() {
        for p in [1usize, 2, 3, 7, 8] {
            let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
            let out = machine.run(move |proc| {
                let g = proc.world();
                let v = vec![((proc.id() * 7 + 3) % 10) as i32, proc.id() as i32];
                prefix_scan_with(proc, &g, &v, i32::MIN, i32::max)
            });
            let inputs: Vec<Vec<i32>> = (0..p)
                .map(|r| vec![((r * 7 + 3) % 10) as i32, r as i32])
                .collect();
            let mut run = vec![i32::MIN; 2];
            for (r, got) in out.results.iter().enumerate() {
                assert_eq!(got, &run, "p={p} rank {r}");
                for (a, b) in run.iter_mut().zip(&inputs[r]) {
                    *a = (*a).max(*b);
                }
            }
        }
    }

    #[test]
    fn chunk_bounds_partition_evenly() {
        for m in [0, 1, 7, 16, 33] {
            for n in [1, 2, 3, 16] {
                let mut covered = 0;
                for j in 0..n {
                    let (lo, hi) = chunk_bounds(m, n, j);
                    assert_eq!(lo, covered);
                    covered = hi;
                    assert!(hi - lo <= m / n + 1);
                }
                assert_eq!(covered, m);
            }
        }
    }

    /// The cost signature is the whole point of having two algorithms:
    /// direct's volume term scales with log P, split's does not.
    #[test]
    fn split_beats_direct_on_large_vectors_and_vice_versa() {
        let model = CostModel::cm5();
        let time = |p: usize, m: usize, algo: PrsAlgorithm| {
            let machine = Machine::new(ProcGrid::line(p), model);
            let out = machine.run(move |proc| {
                proc.clock().set_category(Category::PrefixReductionSum);
                let g = proc.world();
                let v = vec![1i32; m];
                prefix_reduction_sum(proc, &g, &v, algo);
            });
            out.max_cat_ms(Category::PrefixReductionSum)
        };
        // Large vector, many procs: split wins.
        assert!(
            time(16, 16384, PrsAlgorithm::Split) < time(16, 16384, PrsAlgorithm::Direct),
            "split should win on large vectors"
        );
        // Tiny vector, many procs: direct wins (start-up bound).
        assert!(
            time(16, 4, PrsAlgorithm::Direct) < time(16, 4, PrsAlgorithm::Split),
            "direct should win on tiny vectors"
        );
    }
}
