//! Gather / scatter / allgather.
//!
//! These are staging primitives: experiments use them to place test data
//! onto the machine and to pull results off it, typically under
//! `Category::Other` so they never pollute a timed region. They are linear
//! (root exchanges one message per member), which is fine for staging.

use crate::message::Wire;
use crate::proc::{tags, Group, Proc};

/// Gather each member's vector to group rank `root`; the root returns all
/// vectors indexed by source rank, other members return an empty `Vec`.
pub fn gather_to_root<T: Wire>(
    proc: &mut Proc,
    group: &Group,
    root: usize,
    data: Vec<T>,
) -> Vec<Vec<T>> {
    let n = group.size();
    assert!(root < n, "root rank out of range");
    let me = group.my_rank();
    if me == root {
        let mut all: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        all[root] = data;
        for r in (0..n).filter(|&r| r != root) {
            all[r] = proc.recv(group.id_of(r), tags::GATHER);
        }
        all
    } else {
        proc.send(group.id_of(root), tags::GATHER, data);
        Vec::new()
    }
}

/// Scatter per-rank vectors from group rank `root`; each member returns its
/// slice. `parts` is significant only on the root and must have one entry
/// per member.
pub fn scatter_from_root<T: Wire>(
    proc: &mut Proc,
    group: &Group,
    root: usize,
    parts: Vec<Vec<T>>,
) -> Vec<T> {
    let n = group.size();
    assert!(root < n, "root rank out of range");
    let me = group.my_rank();
    if me == root {
        assert_eq!(parts.len(), n, "one part per group member required");
        let mut mine = Vec::new();
        for (r, part) in parts.into_iter().enumerate() {
            if r == root {
                mine = part;
            } else {
                proc.send(group.id_of(r), tags::GATHER, part);
            }
        }
        mine
    } else {
        proc.recv(group.id_of(root), tags::GATHER)
    }
}

/// Every member contributes a vector and receives all vectors, indexed by
/// source rank. Ring algorithm: `P-1` rounds forwarding one slot per round.
pub fn allgather<T: Wire>(proc: &mut Proc, group: &Group, data: Vec<T>) -> Vec<Vec<T>> {
    let n = group.size();
    let me = group.my_rank();
    let mut all: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    all[me] = data;
    let next = group.id_of((me + 1) % n);
    let prev_rank = (me + n - 1) % n;
    let prev = group.id_of(prev_rank);
    proc.with_stage("gather.ring", |proc| {
        for k in 0..n.saturating_sub(1) {
            // Forward the slot received k rounds ago (initially my own).
            let fwd_slot = (me + n - k) % n;
            proc.send(next, tags::GATHER, all[fwd_slot].clone());
            let incoming_slot = (prev_rank + n - k) % n;
            all[incoming_slot] = proc.recv(prev, tags::GATHER);
        }
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::machine::Machine;
    use crate::topology::ProcGrid;

    #[test]
    fn gather_collects_in_rank_order() {
        let machine = Machine::new(ProcGrid::line(5), CostModel::zero());
        let out = machine.run(|proc| {
            let g = proc.world();
            gather_to_root(proc, &g, 2, vec![proc.id() as i32; proc.id() + 1])
        });
        let root = &out.results[2];
        for (r, v) in root.iter().enumerate() {
            assert_eq!(v, &vec![r as i32; r + 1]);
        }
        assert!(out.results[0].is_empty());
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        let machine = Machine::new(ProcGrid::line(4), CostModel::zero());
        let out = machine.run(|proc| {
            let g = proc.world();
            let parts = if g.my_rank() == 0 {
                (0..4).map(|r| vec![r * 11]).collect()
            } else {
                Vec::new()
            };
            scatter_from_root(proc, &g, 0, parts)
        });
        for (r, v) in out.results.iter().enumerate() {
            assert_eq!(v, &vec![r as i32 * 11]);
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let machine = Machine::new(ProcGrid::line(3), CostModel::zero());
        let out = machine.run(|proc| {
            let g = proc.world();
            let parts = if g.my_rank() == 1 {
                vec![vec![1i32], vec![2, 2], vec![3, 3, 3]]
            } else {
                Vec::new()
            };
            let mine = scatter_from_root(proc, &g, 1, parts);
            gather_to_root(proc, &g, 1, mine)
        });
        assert_eq!(out.results[1], vec![vec![1], vec![2, 2], vec![3, 3, 3]]);
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        for p in [1, 2, 3, 6] {
            let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
            let out = machine.run(|proc| {
                let g = proc.world();
                allgather(proc, &g, vec![proc.id() as i32 * 3])
            });
            for all in &out.results {
                for (r, v) in all.iter().enumerate() {
                    assert_eq!(v, &vec![r as i32 * 3], "p={p}");
                }
            }
        }
    }
}
