//! Many-to-many personalized communication.
//!
//! The redistribution stage of PACK/UNPACK needs every processor to send a
//! different message to (potentially) every other processor. The paper uses
//! the *linear permutation* scheduling algorithm [9] with active messages:
//! in round `k = 1 .. P-1`, processor `r` sends to `(r + k) mod P` and
//! receives from `(r - k) mod P`, so every round is a perfect permutation
//! and no node is hit by two senders at once.
//!
//! Alternative schedules are provided for the scheduling-algorithm
//! comparison the paper defers to its technical report [1]: a naive push,
//! and the pairwise-exchange (XOR) schedule classically used on hypercubes.
//! Under the contention-free two-level model of Section 2 the schedules
//! cost nearly the same — which is itself the model's point; on a real
//! network the permutation schedules avoid node contention.

use crate::message::{Packet, Payload};
use crate::pool::Reusable;
use crate::proc::{tags, Group, Proc};

/// Message schedule for [`alltoallv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum A2aSchedule {
    /// Linear permutation [9]: round `k` pairs `r → (r+k) mod P`.
    #[default]
    LinearPermutation,
    /// Send everything immediately in rank order, then receive in rank order.
    NaivePush,
    /// Pairwise exchange: round `k` pairs `r ↔ r XOR k`. A perfect matching
    /// every round when `P` is a power of two (the classic hypercube
    /// schedule); for other `P` the rounds that map out of range fall back
    /// to the linear-permutation pairing.
    PairwiseExchange,
}

/// Exchange `sends[j]` (destined for group rank `j`) among all members;
/// returns the received payloads indexed by source rank. `recv[my_rank]` is
/// the self-message, moved without charge (the paper's implementation skips
/// the local copy).
///
/// Works for any [`Payload`] (plain element vectors, or structured message
/// formats like the compact message scheme's segment stream). Empty slots
/// (zero wire words) transmit for schedule regularity but charge nothing —
/// a real implementation simply would not send a message.
///
/// # Panics
/// Panics if `sends.len() != group.size()`.
pub fn alltoallv<P: Payload + Default>(
    proc: &mut Proc,
    group: &Group,
    mut sends: Vec<P>,
    schedule: A2aSchedule,
) -> Vec<P> {
    let n = group.size();
    assert_eq!(sends.len(), n, "one send buffer per group member required");
    let me = group.my_rank();

    let mut recvs: Vec<P> = (0..n).map(|_| P::default()).collect();
    recvs[me] = std::mem::take(&mut sends[me]);

    match schedule {
        A2aSchedule::LinearPermutation => proc.with_stage("a2a.linear", |proc| {
            for k in 1..n {
                let dst = (me + k) % n;
                let src = (me + n - k) % n;
                proc.send(
                    group.id_of(dst),
                    tags::ALLTOALL,
                    std::mem::take(&mut sends[dst]),
                );
                recvs[src] = proc.recv(group.id_of(src), tags::ALLTOALL);
            }
        }),
        A2aSchedule::NaivePush => proc.with_stage("a2a.naive", |proc| {
            for k in 1..n {
                let dst = (me + k) % n;
                proc.send(
                    group.id_of(dst),
                    tags::ALLTOALL,
                    std::mem::take(&mut sends[dst]),
                );
            }
            for k in 1..n {
                let src = (me + n - k) % n;
                recvs[src] = proc.recv(group.id_of(src), tags::ALLTOALL);
            }
        }),
        A2aSchedule::PairwiseExchange => {
            if n.is_power_of_two() {
                proc.with_stage("a2a.pairwise", |proc| {
                    for k in 1..n {
                        let partner = me ^ k;
                        proc.send(
                            group.id_of(partner),
                            tags::ALLTOALL,
                            std::mem::take(&mut sends[partner]),
                        );
                        recvs[partner] = proc.recv(group.id_of(partner), tags::ALLTOALL);
                    }
                })
            } else {
                // No perfect XOR matching exists; use the linear pairing.
                return proc.with_stage("a2a.linear", |proc| {
                    finish_linear(proc, group, sends, recvs)
                });
            }
        }
    }
    recvs
}

/// Which peers actually exchange data in a planned many-to-many: `to[j]`
/// means this processor sends a (possibly empty) message to group rank `j`,
/// `from[j]` means rank `j` sends one to us. Captured once at plan time so
/// that [`alltoallv_planned`] can skip the send/recv rounds of silent pairs
/// entirely — the count-exchange a fresh `alltoallv` would implicitly redo
/// every call.
///
/// The flags must be *pairwise consistent* across the group: `from[j]` here
/// must equal `to[my_rank]` on rank `j`, or a planned exchange deadlocks
/// waiting for a message that is never sent. [`A2aPlan::exchange`]
/// establishes that consistency collectively; [`A2aPlan::from_flags`] trusts
/// the caller (for protocols where both directions are locally known, e.g. a
/// request/reply pattern replying only to actual requesters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct A2aPlan {
    /// `to[j]`: this rank sends to group rank `j`.
    pub to: Vec<bool>,
    /// `from[j]`: group rank `j` sends to this rank.
    pub from: Vec<bool>,
}

impl A2aPlan {
    /// Build from flags the caller already knows in both directions.
    pub fn from_flags(to: Vec<bool>, from: Vec<bool>) -> A2aPlan {
        assert_eq!(to.len(), from.len(), "direction flags must cover the group");
        A2aPlan { to, from }
    }

    /// Collective: derive the receive flags by a one-round exchange of the
    /// locally known send flags. The flags are single bits riding zero-word
    /// messages, so the round is free under the word-granular cost model —
    /// deliberately so: a fresh [`alltoallv`] gets the same pair-population
    /// knowledge for free through its padding messages, and the planned
    /// path must not cost more for learning once what the unplanned path
    /// re-learns implicitly on every call.
    pub fn exchange(proc: &mut Proc, group: &Group, to: Vec<bool>, schedule: A2aSchedule) -> Self {
        let n = group.size();
        assert_eq!(to.len(), n, "one send flag per group member required");
        let sends: Vec<FlagMsg> = to.iter().map(|&t| FlagMsg(t)).collect();
        let recvs = proc.with_stage("a2a.flags", |proc| alltoallv(proc, group, sends, schedule));
        let from = recvs.iter().map(|r| r.0).collect();
        A2aPlan { to, from }
    }

    /// True iff neither direction of the `(me → dst, src → me)` round pairing
    /// moves data, i.e. the whole round can be skipped.
    #[inline]
    fn round_is_silent(&self, dst: usize, src: usize) -> bool {
        !self.to[dst] && !self.from[src]
    }
}

/// A single send/no-send bit for [`A2aPlan::exchange`]: zero words on the
/// wire (sub-word control information, like the empty padding slots of a
/// plain [`alltoallv`]), but still distinguishable content on arrival.
#[derive(Debug, Clone, Copy, Default)]
struct FlagMsg(bool);

impl Payload for FlagMsg {
    fn wire_words(&self) -> crate::cost::Words {
        0
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(*self)
    }
}

/// [`alltoallv`] with the pair population known in advance: rounds where
/// neither direction moves data are skipped outright instead of exchanging
/// empty padding messages. Delivery semantics are identical to
/// [`alltoallv`]; slots whose flag is off come back as `P::default()`.
///
/// Under the cost model the padding messages were already free, so the
/// simulated time matches the unplanned exchange — the savings are real
/// messages, real synchronization, and the implicit per-call count knowledge
/// that callers with a reusable plan (PACK/UNPACK execution) get for free.
///
/// # Panics
/// Panics if `sends.len()`, `plan.to.len()`, or `plan.from.len()` disagree
/// with the group size, or (in debug builds) if a send slot whose `to` flag
/// is off carries wire words.
pub fn alltoallv_planned<P: Payload + Default>(
    proc: &mut Proc,
    group: &Group,
    mut sends: Vec<P>,
    plan: &A2aPlan,
    schedule: A2aSchedule,
) -> Vec<P> {
    let n = group.size();
    assert_eq!(sends.len(), n, "one send buffer per group member required");
    assert_eq!(plan.to.len(), n, "plan must cover the group");
    assert_eq!(plan.from.len(), n, "plan must cover the group");
    debug_assert!(
        sends
            .iter()
            .enumerate()
            .all(|(j, s)| plan.to[j] || s.wire_words() == 0),
        "send slot flagged silent carries data"
    );
    let me = group.my_rank();

    let mut recvs: Vec<P> = (0..n).map(|_| P::default()).collect();
    recvs[me] = std::mem::take(&mut sends[me]);

    proc.with_stage("a2a.planned", |proc| match schedule {
        A2aSchedule::NaivePush => {
            for k in 1..n {
                let dst = (me + k) % n;
                if plan.to[dst] {
                    proc.send(
                        group.id_of(dst),
                        tags::ALLTOALL,
                        std::mem::take(&mut sends[dst]),
                    );
                }
            }
            for k in 1..n {
                let src = (me + n - k) % n;
                if plan.from[src] {
                    recvs[src] = proc.recv(group.id_of(src), tags::ALLTOALL);
                }
            }
        }
        A2aSchedule::PairwiseExchange if n.is_power_of_two() => {
            for k in 1..n {
                let partner = me ^ k;
                if plan.to[partner] {
                    proc.send(
                        group.id_of(partner),
                        tags::ALLTOALL,
                        std::mem::take(&mut sends[partner]),
                    );
                }
                if plan.from[partner] {
                    recvs[partner] = proc.recv(group.id_of(partner), tags::ALLTOALL);
                }
            }
        }
        // Linear permutation, and the non-power-of-two pairwise fallback.
        _ => {
            for k in 1..n {
                let dst = (me + k) % n;
                let src = (me + n - k) % n;
                if plan.round_is_silent(dst, src) {
                    continue;
                }
                if plan.to[dst] {
                    proc.send(
                        group.id_of(dst),
                        tags::ALLTOALL,
                        std::mem::take(&mut sends[dst]),
                    );
                }
                if plan.from[src] {
                    recvs[src] = proc.recv(group.id_of(src), tags::ALLTOALL);
                }
            }
        }
    });
    recvs
}

/// [`alltoallv_planned`] over pooled buffers: the allocation-free steady
/// state of a cached plan's execute loop.
///
/// The caller has already checked out, filled, and stashed the pool slot
/// for every destination `dst` with `plan.to[dst]` — including its own rank,
/// whose slot is never sent and is decoded in place (the uncharged
/// self-move of the boxed variants). Received messages land in `out` as raw
/// [`Packet`]s whose payload is the *sender's* `Arc<PoolSlot<B>>`; the
/// decoder downcasts, takes the staged buffer, and returns it with
/// [`crate::PoolSlot::put_back`] — which is what un-blocks the sender's next
/// checkout.
///
/// Always runs over the world communicator (group rank = processor id),
/// and mirrors [`alltoallv_planned`]'s send/recv order, stage span, and
/// charges exactly: the simulated accounting of a pooled execute is
/// bit-identical to the boxed path (see DESIGN.md §11).
pub fn alltoallv_pooled<B: Reusable>(
    proc: &mut Proc,
    plan: &A2aPlan,
    schedule: A2aSchedule,
    key: u64,
    out: &mut Vec<Packet>,
) {
    let n = proc.nprocs();
    assert_eq!(plan.to.len(), n, "plan must cover the world");
    assert_eq!(plan.from.len(), n, "plan must cover the world");
    let me = proc.id();

    // Wall attribution: each received packet's charged wire words, so the
    // profile reports the exchange's effective receive bandwidth.
    fn recv_attributed(proc: &mut Proc, src: usize, out: &mut Vec<Packet>) {
        let pkt = proc.recv_packet(src, tags::ALLTOALL);
        proc.wall_bytes(pkt.words as u64 * 4);
        out.push(pkt);
    }

    proc.wall_span("a2a.pooled", |proc| {
        proc.with_stage("a2a.planned", |proc| match schedule {
            A2aSchedule::NaivePush => {
                for k in 1..n {
                    let dst = (me + k) % n;
                    if plan.to[dst] {
                        let slot = proc.pool_current::<B>(key, dst);
                        proc.send_pooled(dst, tags::ALLTOALL, &slot);
                    }
                }
                for k in 1..n {
                    let src = (me + n - k) % n;
                    if plan.from[src] {
                        recv_attributed(proc, src, out);
                    }
                }
            }
            A2aSchedule::PairwiseExchange if n.is_power_of_two() => {
                for k in 1..n {
                    let partner = me ^ k;
                    if plan.to[partner] {
                        let slot = proc.pool_current::<B>(key, partner);
                        proc.send_pooled(partner, tags::ALLTOALL, &slot);
                    }
                    if plan.from[partner] {
                        recv_attributed(proc, partner, out);
                    }
                }
            }
            // Linear permutation, and the non-power-of-two pairwise fallback.
            _ => {
                for k in 1..n {
                    let dst = (me + k) % n;
                    let src = (me + n - k) % n;
                    if plan.round_is_silent(dst, src) {
                        continue;
                    }
                    if plan.to[dst] {
                        let slot = proc.pool_current::<B>(key, dst);
                        proc.send_pooled(dst, tags::ALLTOALL, &slot);
                    }
                    if plan.from[src] {
                        recv_attributed(proc, src, out);
                    }
                }
            }
        });
    });
}

fn finish_linear<P: Payload + Default>(
    proc: &mut Proc,
    group: &Group,
    mut sends: Vec<P>,
    mut recvs: Vec<P>,
) -> Vec<P> {
    let n = group.size();
    let me = group.my_rank();
    for k in 1..n {
        let dst = (me + k) % n;
        let src = (me + n - k) % n;
        proc.send(
            group.id_of(dst),
            tags::ALLTOALL,
            std::mem::take(&mut sends[dst]),
        );
        recvs[src] = proc.recv(group.id_of(src), tags::ALLTOALL);
    }
    recvs
}

/// A bundle-carrying message for the two-phase schedule: each bundle is
/// tagged with a peer rank (the final destination in phase 1, the original
/// source in phase 2). Two header words per bundle on the wire.
struct Bundled<T> {
    bundles: Vec<(u32, Vec<T>)>,
}

impl<T> Default for Bundled<T> {
    fn default() -> Self {
        Bundled {
            bundles: Vec::new(),
        }
    }
}

impl<T: Wire> Clone for Bundled<T> {
    fn clone(&self) -> Self {
        Bundled {
            bundles: self.bundles.clone(),
        }
    }
}

impl<T: Wire> Payload for Bundled<T> {
    fn wire_words(&self) -> crate::cost::Words {
        self.bundles
            .iter()
            .map(|(_, v)| 2 + v.len() * T::WORDS)
            .sum()
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

use crate::message::Wire;

/// Two-phase (row–column) schedule for *sparse* many-to-many exchanges.
///
/// Ranks are arranged on a `rows × cols` virtual grid (`cols = ⌈√P⌉`).
/// Phase 1 forwards each message to the row-mate sharing the destination's
/// column; phase 2 delivers within the column. Each processor pays at most
/// `≈ 2√P` message start-ups instead of `P-1`, at the price of moving every
/// element twice plus two header words per (source, destination) pair — the
/// classic trade for exchanges of many tiny messages ([9]'s all-to-many
/// family). For dense exchanges prefer [`alltoallv`].
///
/// Semantics match [`alltoallv`]: `sends[j]` goes to group rank `j`; the
/// result is indexed by original source rank.
pub fn alltoallv_two_phase<T: Wire>(
    proc: &mut Proc,
    group: &Group,
    mut sends: Vec<Vec<T>>,
    schedule: A2aSchedule,
) -> Vec<Vec<T>> {
    let n = group.size();
    assert_eq!(sends.len(), n, "one send buffer per group member required");
    let me = group.my_rank();
    let cols = (n as f64).sqrt().ceil() as usize;
    if cols <= 1 || n <= 3 {
        return alltoallv(proc, group, sends, schedule);
    }

    // Relay for traffic from `src`'s row toward `dst`: the processor in
    // src's row with dst's column, falling back to row 0 (always full) when
    // the ragged last row lacks that column.
    let relay_of = |src: usize, dst: usize| -> usize {
        let r = (src / cols) * cols + dst % cols;
        if r < n {
            r
        } else {
            dst % cols
        }
    };

    // Phase 1: bundle by relay. The self-slot skips both phases.
    let mut recvs: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    recvs[me] = std::mem::take(&mut sends[me]);
    let mut phase1: Vec<Bundled<T>> = (0..n).map(|_| Bundled::default()).collect();
    for (dst, payload) in sends.into_iter().enumerate() {
        if dst == me || payload.is_empty() {
            continue;
        }
        phase1[relay_of(me, dst)]
            .bundles
            .push((dst as u32, payload));
    }
    proc.marker("a2a.two_phase.relay");
    let relayed = alltoallv(proc, group, phase1, schedule);

    // Phase 2: regroup by final destination, tagging with the original
    // source. My own deliveries (I was the relay for me->dst? impossible:
    // dst==me was skipped; but src->me bundles can arrive here directly if
    // relay_of(src, me) == me).
    let mut phase2: Vec<Bundled<T>> = (0..n).map(|_| Bundled::default()).collect();
    for (src, msg) in relayed.into_iter().enumerate() {
        for (dst, items) in msg.bundles {
            let dst = dst as usize;
            if dst == me {
                recvs[src] = items;
            } else {
                phase2[dst].bundles.push((src as u32, items));
            }
        }
    }
    proc.marker("a2a.two_phase.deliver");
    let delivered = alltoallv(proc, group, phase2, schedule);
    for msg in delivered {
        for (src, items) in msg.bundles {
            recvs[src as usize] = items;
        }
    }
    recvs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::machine::Machine;
    use crate::topology::ProcGrid;

    fn run_exchange(p: usize, schedule: A2aSchedule) {
        let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
        let out = machine.run(move |proc| {
            let g = proc.world();
            // Rank r sends [r*100 + j; r+j+1 elements] to rank j.
            let sends: Vec<Vec<i32>> = (0..p)
                .map(|j| vec![(proc.id() * 100 + j) as i32; proc.id() + j + 1])
                .collect();
            alltoallv(proc, &g, sends, schedule)
        });
        for (j, recvs) in out.results.iter().enumerate() {
            for (r, v) in recvs.iter().enumerate() {
                assert_eq!(v.len(), r + j + 1, "length from {r} to {j}");
                assert!(
                    v.iter().all(|&x| x == (r * 100 + j) as i32),
                    "content from {r} to {j}"
                );
            }
        }
    }

    #[test]
    fn linear_permutation_delivers_everything() {
        for p in [1, 2, 3, 5, 8] {
            run_exchange(p, A2aSchedule::LinearPermutation);
        }
    }

    #[test]
    fn naive_push_delivers_everything() {
        for p in [1, 2, 3, 5, 8] {
            run_exchange(p, A2aSchedule::NaivePush);
        }
    }

    #[test]
    fn pairwise_exchange_delivers_everything() {
        // Powers of two use the XOR matching; other sizes fall back.
        for p in [1, 2, 3, 4, 5, 8] {
            run_exchange(p, A2aSchedule::PairwiseExchange);
        }
    }

    #[test]
    fn two_phase_delivers_everything() {
        for p in [1, 2, 3, 4, 5, 7, 9, 16] {
            let machine = Machine::new(ProcGrid::line(p), CostModel::zero());
            let out = machine.run(move |proc| {
                let g = proc.world();
                let sends: Vec<Vec<i32>> = (0..p)
                    .map(|j| vec![(proc.id() * 100 + j) as i32; (proc.id() + j) % 3])
                    .collect();
                alltoallv_two_phase(proc, &g, sends, A2aSchedule::LinearPermutation)
            });
            for (j, recvs) in out.results.iter().enumerate() {
                for (r, v) in recvs.iter().enumerate() {
                    assert_eq!(v.len(), (r + j) % 3, "p={p} from {r} to {j}");
                    assert!(v.iter().all(|&x| x == (r * 100 + j) as i32));
                }
            }
        }
    }

    /// The point of two-phase: far fewer start-ups for all-pairs tiny
    /// messages, at ~2x the volume.
    #[test]
    fn two_phase_trades_volume_for_startups() {
        let p = 16usize;
        let run = |two_phase: bool| {
            let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
            let out = machine.run(move |proc| {
                let g = proc.world();
                let sends: Vec<Vec<i32>> = (0..p).map(|j| vec![j as i32]).collect();
                if two_phase {
                    alltoallv_two_phase(proc, &g, sends, A2aSchedule::LinearPermutation);
                } else {
                    alltoallv(proc, &g, sends, A2aSchedule::LinearPermutation);
                }
            });
            (
                out.total_startups(),
                out.total_words_sent(),
                out.max_time_ms(),
            )
        };
        let (s1, w1, t1) = run(false);
        let (s2, w2, t2) = run(true);
        assert!(
            s2 < s1 / 2,
            "two-phase startups {s2} should be well under direct {s1}"
        );
        assert!(w2 > w1, "two-phase volume {w2} must exceed direct {w1}");
        assert!(
            t2 < t1,
            "with 1-word messages, start-ups dominate: {t2} < {t1}"
        );
    }

    /// Planned exchanges deliver the same payloads as plain `alltoallv`
    /// over a sparse pattern (only ranks at even distance talk), for every
    /// schedule and an awkward mix of group sizes.
    #[test]
    fn planned_matches_unplanned_on_sparse_patterns() {
        for p in [1usize, 2, 3, 5, 8, 16] {
            for schedule in [
                A2aSchedule::LinearPermutation,
                A2aSchedule::NaivePush,
                A2aSchedule::PairwiseExchange,
            ] {
                let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
                let out = machine.run(move |proc| {
                    let g = proc.world();
                    let build = |me: usize| -> Vec<Vec<i32>> {
                        (0..p)
                            .map(|j| {
                                if (me + j).is_multiple_of(2) && me != j {
                                    vec![(me * 100 + j) as i32; me + 1]
                                } else {
                                    Vec::new()
                                }
                            })
                            .collect()
                    };
                    let to: Vec<bool> = build(proc.id()).iter().map(|s| !s.is_empty()).collect();
                    let plan = A2aPlan::exchange(proc, &g, to, schedule);
                    let planned = alltoallv_planned(proc, &g, build(proc.id()), &plan, schedule);
                    let plain = alltoallv(proc, &g, build(proc.id()), schedule);
                    (planned, plain)
                });
                for (me, (planned, plain)) in out.results.iter().enumerate() {
                    assert_eq!(planned, plain, "p={p} {schedule:?} rank {me}");
                }
            }
        }
    }

    /// The flag exchange is free on the wire and the planned rounds then
    /// move no padding at all — words and time drop to the populated pairs.
    #[test]
    fn planned_exchange_skips_silent_pairs() {
        let p = 6usize;
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5()).with_metrics(true);
        let out = machine.run(move |proc| {
            let g = proc.world();
            // Only 0 -> 1 carries data.
            let mut sends: Vec<Vec<i32>> = vec![Vec::new(); p];
            let to: Vec<bool> = (0..p).map(|j| proc.id() == 0 && j == 1).collect();
            if proc.id() == 0 {
                sends[1] = vec![7, 8, 9];
            }
            let plan = A2aPlan::exchange(proc, &g, to.clone(), A2aSchedule::LinearPermutation);
            assert_eq!(plan.from.iter().filter(|&&f| f).count() > 0, proc.id() == 1);
            alltoallv_planned(proc, &g, sends, &plan, A2aSchedule::LinearPermutation)
        });
        assert_eq!(out.results[1][0], vec![7, 8, 9]);
        // Flag exchange: zero-word flags charge nothing. Planned rounds:
        // one 3-word message. Every other pair stays silent.
        assert_eq!(out.total_words_sent(), 3);
    }

    #[test]
    fn from_flags_reply_pattern_needs_no_exchange() {
        // Request/reply: every rank requests from rank 0 only, so both
        // directions are locally known and no flag exchange is needed.
        let p = 4usize;
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let g = proc.world();
            let me = proc.id();
            let to: Vec<bool> = (0..p).map(|j| me == 0 && j != 0).collect();
            let from: Vec<bool> = (0..p).map(|j| me != 0 && j == 0).collect();
            let plan = A2aPlan::from_flags(to, from);
            let sends: Vec<Vec<i32>> = (0..p)
                .map(|j| {
                    if me == 0 && j != 0 {
                        vec![j as i32 * 11]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            alltoallv_planned(proc, &g, sends, &plan, A2aSchedule::LinearPermutation)
        });
        for (me, recvs) in out.results.iter().enumerate().skip(1) {
            assert_eq!(recvs[0], vec![me as i32 * 11]);
        }
    }

    /// Zero-word skip edge case: an all-empty two-phase exchange moves
    /// nothing in either phase and charges nothing at all.
    #[test]
    fn two_phase_with_all_empty_sends() {
        for p in [4usize, 7, 16] {
            let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
            let out = machine.run(move |proc| {
                let g = proc.world();
                let sends: Vec<Vec<i32>> = vec![Vec::new(); p];
                alltoallv_two_phase(proc, &g, sends, A2aSchedule::LinearPermutation)
            });
            assert_eq!(out.total_words_sent(), 0, "p={p}");
            assert_eq!(out.total_startups(), 0, "p={p}");
            for recvs in &out.results {
                assert!(recvs.iter().all(Vec::is_empty));
            }
        }
    }

    /// Zero-word skip edge case: exactly one populated pair routes through
    /// one relay, so the two-phase words are exactly twice the bundle size
    /// (payload + 2 header words, moved twice) and everything else stays
    /// silent.
    #[test]
    fn two_phase_with_single_nonsilent_pair() {
        // p = 9 puts ranks on a 3×3 grid; for 2 → 4 the relay is rank 1
        // (row of 2, column of 4) — distinct from both endpoints.
        let p = 9usize;
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let g = proc.world();
            let mut sends: Vec<Vec<i32>> = vec![Vec::new(); p];
            if proc.id() == 2 {
                sends[4] = vec![70, 71, 72];
            }
            alltoallv_two_phase(proc, &g, sends, A2aSchedule::LinearPermutation)
        });
        for (me, recvs) in out.results.iter().enumerate() {
            for (src, v) in recvs.iter().enumerate() {
                if (me, src) == (4, 2) {
                    assert_eq!(v, &vec![70, 71, 72]);
                } else {
                    assert!(v.is_empty(), "unexpected data {src} -> {me}");
                }
            }
        }
        // 3 payload words + 2 header words, relayed twice.
        assert_eq!(out.total_words_sent(), 10);
        assert_eq!(out.total_startups(), 2);
    }

    /// Flag-exchange edge case: with nothing to say anywhere, the derived
    /// plan is all-silent on every rank and the exchange itself is free.
    #[test]
    fn plan_exchange_with_all_empty_sends() {
        for schedule in [
            A2aSchedule::LinearPermutation,
            A2aSchedule::NaivePush,
            A2aSchedule::PairwiseExchange,
        ] {
            let p = 5usize;
            let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
            let out = machine.run(move |proc| {
                let g = proc.world();
                let plan = A2aPlan::exchange(proc, &g, vec![false; p], schedule);
                let recvs =
                    alltoallv_planned(proc, &g, vec![Vec::<i32>::new(); p], &plan, schedule);
                (plan.from, recvs)
            });
            assert_eq!(out.total_words_sent(), 0, "{schedule:?}");
            for (from, recvs) in &out.results {
                assert!(from.iter().all(|&f| !f), "{schedule:?}");
                assert!(recvs.iter().all(Vec::is_empty));
            }
        }
    }

    /// Flag-exchange edge case: exactly one non-silent pair yields exactly
    /// one raised flag per direction, on exactly the right ranks, under
    /// every schedule.
    #[test]
    fn plan_exchange_with_single_pair_sets_one_flag() {
        for schedule in [
            A2aSchedule::LinearPermutation,
            A2aSchedule::NaivePush,
            A2aSchedule::PairwiseExchange,
        ] {
            let p = 8usize;
            let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
            let out = machine.run(move |proc| {
                let g = proc.world();
                let to: Vec<bool> = (0..p).map(|j| proc.id() == 3 && j == 6).collect();
                A2aPlan::exchange(proc, &g, to, schedule).from
            });
            for (me, from) in out.results.iter().enumerate() {
                let expect: Vec<bool> = (0..p).map(|j| me == 6 && j == 3).collect();
                assert_eq!(from, &expect, "{schedule:?} rank {me}");
            }
            assert_eq!(out.total_words_sent(), 0, "flags ride zero-word frames");
        }
    }

    #[test]
    fn empty_slots_charge_nothing() {
        let machine = Machine::new(
            ProcGrid::line(4),
            CostModel {
                delta_ns: 0.0,
                tau_ns: 100.0,
                mu_ns: 1.0,
                ..CostModel::zero()
            },
        );
        let out = machine.run(|proc| {
            let g = proc.world();
            // Only proc 0 sends anything, and only to proc 1.
            let mut sends: Vec<Vec<i32>> = vec![Vec::new(); 4];
            if proc.id() == 0 {
                sends[1] = vec![1, 2, 3];
            }
            alltoallv(proc, &g, sends, A2aSchedule::LinearPermutation);
        });
        // Proc 0 paid for exactly one 3-word message; everyone else nothing.
        assert_eq!(out.clocks[0].words_sent, 3);
        assert_eq!(out.clocks[0].startups, 1);
        for c in &out.clocks[1..] {
            assert_eq!(c.words_sent, 0);
            assert_eq!(c.startups, 0);
        }
    }

    #[test]
    fn self_message_moves_without_charge() {
        let machine = Machine::new(ProcGrid::line(2), CostModel::cm5());
        let out = machine.run(|proc| {
            let g = proc.world();
            let mut sends: Vec<Vec<i32>> = vec![Vec::new(); 2];
            sends[proc.id()] = vec![42; 10];
            let recvs = alltoallv(proc, &g, sends, A2aSchedule::LinearPermutation);
            recvs[proc.id()].clone()
        });
        assert_eq!(out.results[0], vec![42; 10]);
        assert_eq!(out.clocks[0].words_sent, 0);
    }
}
