//! The per-processor handle given to SPMD program closures.
//!
//! A [`Proc`] bundles the processor's identity on the logical grid, its
//! private simulated clock, and its message endpoints. All communication —
//! point-to-point sends and the collectives built on top of them — flows
//! through this handle, which is how every byte gets charged to the cost
//! model. When the machine carries a [`crate::fault::FaultPlan`], the same
//! handle transparently routes charged traffic over the reliable transport
//! (see [`crate::reliable`]).

use std::any::Any;
use std::panic::panic_any;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::chan::{FrameReceiver, FrameSender};
use crate::cost::{Category, SimClock};
use crate::error::MachineError;
use crate::fault::FaultPlan;
use crate::message::{Frame, Mailbox, Packet, Payload, PayloadCharge};
use crate::obs::{
    Counter, Event, EventKind, Gauge, Histogram, MemAccount, MetricsSnapshot, ObsConfig, Registry,
    TransportEvent, WallProfile, WallProfiler,
};
use crate::pool::{BufferPool, PoolSlot, Reusable};
use crate::recovery::{Checkpoint, EpochSnapshot, RecoveryState, ResumeCtx};
use crate::reliable::Transport;
use crate::sched::Scheduler;
use crate::topology::ProcGrid;

/// Cap on the per-processor packet-scratch pre-reserve. Reserving a full
/// P-length scratch on every processor is P² machine-wide (~1 GB at
/// P=4096); pooled exchanges rarely buffer more than a round's fan-in, and
/// any overflow grows the vector on the first execute — before the
/// steady-state zero-allocation window begins.
const PKT_SCRATCH_RESERVE: usize = 256;

/// Tag namespaces. Each collective type uses its own tag so that a program
/// error (processors disagreeing about which collective comes next) fails
/// loudly as a downcast/hang instead of silently mixing payloads. Within one
/// tag, per-sender FIFO order plus SPMD program order makes matching exact.
pub mod tags {
    /// Prefix-reduction-sum rounds.
    pub const SCAN: u64 = 1;
    /// Reduction rounds.
    pub const REDUCE: u64 = 2;
    /// Broadcast tree edges.
    pub const BCAST: u64 = 3;
    /// Gather/scatter/allgather traffic.
    pub const GATHER: u64 = 4;
    /// Many-to-many personalized communication rounds.
    pub const ALLTOALL: u64 = 5;
    /// Reserved for explicit barriers.
    pub const BARRIER: u64 = 6;
    /// Uncharged clock-synchronisation control traffic.
    pub const CLOCK_SYNC: u64 = 7;
    /// First tag available to user programs.
    pub const USER: u64 = 1 << 16;
}

/// A subset of processors acting as a communicator, e.g. all processors, or
/// the processors sharing every grid coordinate except one dimension
/// (the communicator a dimension-`i` prefix-reduction-sum runs over).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Global processor ids of the members, in rank order.
    members: Vec<usize>,
    /// This processor's rank within `members`.
    my_rank: usize,
}

impl Group {
    /// Build a group from an ordered member list and the caller's position.
    ///
    /// # Panics
    /// Panics if `members[my_rank]` is out of bounds.
    pub fn new(members: Vec<usize>, my_rank: usize) -> Self {
        assert!(my_rank < members.len(), "my_rank out of range");
        Group { members, my_rank }
    }

    /// Number of members.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This processor's rank within the group.
    #[inline]
    pub fn my_rank(&self) -> usize {
        self.my_rank
    }

    /// Global id of the member at `rank`.
    #[inline]
    pub fn id_of(&self, rank: usize) -> usize {
        self.members[rank]
    }

    /// All member ids in rank order.
    #[inline]
    pub fn members(&self) -> &[usize] {
        &self.members
    }
}

/// Hot-path metric handles, resolved once at processor start so that every
/// update is a single lock-free atomic operation (see [`crate::obs`]).
struct ProcMetrics {
    registry: Registry,
    msg_sent: Arc<Counter>,
    msg_recvd: Arc<Counter>,
    msg_words: Arc<Histogram>,
    mailbox_depth: Arc<Gauge>,
    retransmits: Arc<Counter>,
    dup_drops: Arc<Counter>,
    retry_latency_us: Arc<Histogram>,
    clone_words: Arc<Counter>,
    /// Per-account memory gauges, indexed by `MemAccount as usize`
    /// (`last` = current bytes, `max` = peak; see DESIGN.md §13).
    mem: [Arc<Gauge>; MemAccount::ALL.len()],
}

impl ProcMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        ProcMetrics {
            msg_sent: registry.counter("msg.sent"),
            msg_recvd: registry.counter("msg.recvd"),
            msg_words: registry.histogram("msg.words"),
            mailbox_depth: registry.gauge("mailbox.depth"),
            retransmits: registry.counter("transport.retransmits"),
            dup_drops: registry.counter("transport.dup_drops"),
            retry_latency_us: registry.histogram("transport.retry_latency_us"),
            clone_words: registry.counter("payload.clone_words"),
            mem: MemAccount::ALL.map(|a| registry.gauge(a.gauge_name())),
            registry,
        }
    }
}

/// Handle to one virtual processor inside a running SPMD program.
pub struct Proc<'m> {
    id: usize,
    grid: &'m ProcGrid,
    clock: SimClock,
    senders: &'m [FrameSender],
    rx: FrameReceiver,
    /// The cooperative scheduler multiplexing virtual processors over the
    /// machine's carrier-thread pool. Every wall-clock wait in this file
    /// parks here instead of blocking or spinning, so a bounded pool can
    /// carry thousands of processors (see DESIGN.md §15).
    sched: Arc<Scheduler>,
    mailbox: Mailbox,
    recv_timeout: Duration,
    /// Reliable transport state; present iff the machine carries a
    /// non-benign fault plan.
    transport: Option<Transport>,
    /// Charged words sent to each destination (self and padding excluded).
    words_to: Vec<u64>,
    /// Structured event log, present iff the machine traces.
    events: Option<Vec<Event>>,
    /// Metric registry + cached hot-path handles, present iff enabled.
    metrics: Option<ProcMetrics>,
    /// Wall-clock span recorder, present iff wall profiling is enabled.
    /// Strictly wall-side: it never reads or charges the simulated clock.
    wall: Option<WallProfiler>,
    /// Reusable send buffers for planned executes (see [`crate::pool`]).
    pool: BufferPool,
    /// Scratch space for pooled exchanges' received packets, pre-reserved
    /// so the steady-state execute loop never grows it.
    pkt_scratch: Vec<Packet>,
    /// Shared crash-recovery state; present iff the machine is running
    /// under [`crate::Machine::run_recoverable`].
    recovery: Option<Arc<RecoveryState>>,
    /// Pending resume context on a respawned processor; consumed by the
    /// first [`Proc::epoch`] call at the resume epoch.
    resume: Option<ResumeCtx>,
    /// Index of the next epoch this processor will enter.
    epoch_idx: usize,
    /// False on a respawned processor: the crash schedule already fired once
    /// and must not fire again during re-execution.
    crash_armed: bool,
}

impl<'m> Proc<'m> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        grid: &'m ProcGrid,
        clock: SimClock,
        senders: &'m [FrameSender],
        rx: FrameReceiver,
        recv_timeout: Duration,
        plan: Option<Arc<FaultPlan>>,
        obs: ObsConfig,
        sched: Arc<Scheduler>,
    ) -> Self {
        let nprocs = grid.nprocs();
        let mut transport = plan
            .filter(|p| !p.is_benign())
            .map(|p| Transport::new(p, nprocs));
        if let Some(t) = transport.as_mut() {
            t.record = !obs.is_off();
        }
        let mut proc = Proc {
            id,
            grid,
            clock,
            senders,
            rx,
            sched,
            mailbox: Mailbox::new(),
            recv_timeout,
            transport,
            words_to: vec![0; nprocs],
            events: obs.events.then(Vec::new),
            metrics: obs.metrics.then(ProcMetrics::new),
            wall: obs.wall.then(WallProfiler::new),
            pool: BufferPool::default(),
            pkt_scratch: Vec::with_capacity(nprocs.min(PKT_SCRATCH_RESERVE)),
            recovery: None,
            resume: None,
            epoch_idx: 0,
            crash_armed: true,
        };
        // The frame ring pinned for this processor's lifetime, charged up
        // front at simulated t=0 (a machine-shape constant, never released;
        // asserted byte-exactly by the memory perf group rather than by the
        // workload-driven peak gate).
        let ring = crate::chan::ring_bytes(proc.rx.capacity());
        proc.mem_charge(MemAccount::MailboxRing, ring);
        proc
    }

    /// Attach shared crash-recovery state (and, on a respawned processor,
    /// the resume context). Called by the driver before the program closure
    /// runs. A respawned processor disarms the crash schedule — it already
    /// fired — and, when no epoch had completed before the crash, performs
    /// its replay immediately: the program restarts from scratch, peers
    /// dedup its re-sent frames by sequence number, and the (never
    /// truncated) replay log re-supplies everything peers had sent it.
    pub(crate) fn attach_recovery(&mut self, state: Arc<RecoveryState>, resume: Option<ResumeCtx>) {
        self.recovery = Some(state);
        if let Some(r) = resume {
            self.crash_armed = false;
            if r.snapshot.is_none() {
                let rec = Arc::clone(self.recovery.as_ref().expect("just attached"));
                self.inject_replay(r.replay, &rec);
            } else {
                self.resume = Some(r);
            }
        }
    }

    /// True iff this processor runs under [`crate::Machine::run_recoverable`].
    /// Planned executes use this to fall back from pooled (in-place mutated)
    /// send buffers to owned ones that a replayed packet can safely share.
    #[inline]
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Global processor id, `0 ≤ id < P`.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total processor count `P`.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.grid.nprocs()
    }

    /// The logical processor grid.
    #[inline]
    pub fn grid(&self) -> &ProcGrid {
        self.grid
    }

    /// This processor's grid coordinates (innermost dimension first).
    pub fn coords(&self) -> Vec<usize> {
        self.grid.coords(self.id)
    }

    /// This processor's coordinate along grid dimension `dim`.
    #[inline]
    pub fn coord(&self, dim: usize) -> usize {
        self.grid.coord(self.id, dim)
    }

    /// Mutable access to the simulated clock (for charging local work).
    #[inline]
    pub fn clock(&mut self) -> &mut SimClock {
        &mut self.clock
    }

    /// Read-only clock access.
    #[inline]
    pub fn clock_ref(&self) -> &SimClock {
        &self.clock
    }

    /// Charge `n` elementary local operations to the ambient category.
    #[inline]
    pub fn charge_ops(&mut self, ops: usize) {
        self.clock.charge_ops(ops);
    }

    /// Run `f` with the clock's ambient category set to `cat`, restoring the
    /// previous category afterwards.
    pub fn with_category<R>(&mut self, cat: Category, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.clock.set_category(cat);
        let out = f(self);
        self.clock.set_category(prev);
        out
    }

    /// Run `f` with the clock muted: the data moves, nothing is charged.
    /// Used to realise operations a modelled hardware unit would carry
    /// (e.g. CM-5 control-network scans), whose cost the caller then
    /// charges explicitly.
    pub fn with_uncharged_comm<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.clock.set_muted(true);
        let out = f(self);
        self.clock.set_muted(prev);
        out
    }

    /// Append one structured event (no-op unless the machine traces).
    #[inline]
    fn record(&mut self, ts_ns: f64, kind: EventKind) {
        if let Some(ev) = self.events.as_mut() {
            ev.push(Event { ts_ns, kind });
        }
    }

    /// Record one memory-accounting sample: a [`EventKind::MemSample`]
    /// event when tracing, and — when `owner` is this processor — a
    /// `mem.<account>.cur` gauge update when metrics are on. A sender
    /// charging a destination's replay-log account records only the event;
    /// the destination maintains its own gauge at epoch boundaries, where
    /// the interval peak becomes known (see [`Proc::epoch_boundary`]).
    fn mem_sample(&mut self, account: MemAccount, owner: usize, ts_ns: f64, delta_bytes: i64) {
        self.record(
            ts_ns,
            EventKind::MemSample {
                account,
                owner,
                delta_bytes,
            },
        );
        if owner == self.id {
            if let Some(m) = self.metrics.as_ref() {
                let g = &m.mem[account as usize];
                if delta_bytes >= 0 {
                    g.add(delta_bytes as u64);
                } else {
                    g.sub(delta_bytes.unsigned_abs());
                }
            }
        }
    }

    /// Charge `bytes` to this processor's memory `account` at the current
    /// simulated time. No-op (one branch) when neither tracing nor metrics
    /// are enabled, and never clock-charged — accounting is bookkeeping.
    /// Library layers use this for word-carrying structures the machine
    /// cannot see: plan-time index/segment buffers (`hpf-core`) and user
    /// arrays registered through `distarray`'s `TrackArray` hook.
    pub fn mem_charge(&mut self, account: MemAccount, bytes: u64) {
        if self.events.is_none() && self.metrics.is_none() {
            return;
        }
        let now = self.clock.now_ns();
        self.mem_sample(account, self.id, now, bytes as i64);
    }

    /// Release bytes previously charged with [`Proc::mem_charge`].
    pub fn mem_release(&mut self, account: MemAccount, bytes: u64) {
        if self.events.is_none() && self.metrics.is_none() {
            return;
        }
        let now = self.clock.now_ns();
        self.mem_sample(account, self.id, now, -(bytes as i64));
    }

    /// Run `f` as the named algorithm stage. When tracing is on, the stage
    /// is bracketed by [`EventKind::SpanBegin`]/[`EventKind::SpanEnd`]
    /// events; when metrics are on, its simulated duration is observed in
    /// the `stage.<name>.us` histogram. One branch each when both are off.
    ///
    /// Stage names are `"."`-separated and stable — they are the join key
    /// between traces, metrics, perf reports, and the paper's section
    /// structure (see DESIGN.md §8).
    pub fn with_stage<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        // Every simulated stage is also bracketed by a wall-clock span when
        // profiling is on, so wall and simulated views share the same stage
        // vocabulary without instrumenting call sites twice. Wall recording
        // never touches the simulated side below.
        if self.wall.is_none() {
            return self.with_stage_sim(name, f);
        }
        self.wall_span(name, |p| p.with_stage_sim(name, f))
    }

    /// The simulated half of [`Proc::with_stage`]: event spans and the
    /// stage-duration histogram.
    fn with_stage_sim<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.events.is_none() && self.metrics.is_none() {
            return f(self);
        }
        let t0 = self.clock.now_ns();
        self.record(t0, EventKind::SpanBegin { name });
        let out = f(self);
        let t1 = self.clock.now_ns();
        self.record(t1, EventKind::SpanEnd { name });
        if let Some(m) = self.metrics.as_ref() {
            let us = ((t1 - t0) / 1000.0).max(0.0) as u64;
            m.registry
                .histogram(&format!("stage.{name}.us"))
                .observe(us);
        }
        out
    }

    /// Run `f` inside a wall-clock span named `name`. A single `Option`
    /// branch when wall profiling is off — the default, keeping the
    /// steady-state execute loop's zero-allocation guarantee intact. The
    /// span records monotonic wall nanoseconds only; the simulated clock,
    /// event log, and metrics are untouched, so enabling profiling can
    /// never perturb simulated results.
    #[inline]
    pub fn wall_span<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.wall.is_none() {
            return f(self);
        }
        if let Some(w) = self.wall.as_mut() {
            w.begin(name);
        }
        let out = f(self);
        if let Some(w) = self.wall.as_mut() {
            w.end();
        }
        out
    }

    /// Attribute `bytes` of payload movement to the innermost open wall
    /// span, so the profile can report effective copy bandwidth per stage.
    /// No-op unless wall profiling is on.
    #[inline]
    pub fn wall_bytes(&mut self, bytes: u64) {
        if let Some(w) = self.wall.as_mut() {
            w.add_bytes(bytes);
        }
    }

    /// Drop a named point annotation at the current simulated time (e.g. a
    /// collective phase boundary). No-op unless the machine traces.
    #[inline]
    pub fn marker(&mut self, name: &'static str) {
        if self.events.is_some() {
            let now = self.clock.now_ns();
            self.record(now, EventKind::Marker { name });
        }
    }

    /// Increment the named counter in the metrics registry by `n` (no-op
    /// unless the machine was built with metrics). Library layers use this
    /// for algorithm-level counters (e.g. `plan.cache.hit`) that surface in
    /// [`crate::RunOutput::merged_metrics`] next to the transport counters.
    pub fn inc_counter(&mut self, name: &str, n: u64) {
        if let Some(m) = self.metrics.as_ref() {
            m.registry.counter(name).add(n);
        }
    }

    /// Timestamp and fold the transport's buffered observations into the
    /// event log and metrics. Retransmit timing is wall-clock driven, so
    /// these events carry the *current* simulated time — the instant the
    /// processor noticed, which is the honest simulated-time statement.
    fn drain_transport_events(&mut self) {
        let evs = match self.transport.as_mut() {
            Some(t) if t.record => t.take_events(),
            _ => return,
        };
        if evs.is_empty() {
            return;
        }
        let now = self.clock.now_ns();
        for ev in evs {
            match ev {
                TransportEvent::Retransmit(dst, seq, attempt, waited_us) => {
                    self.record(now, EventKind::Retransmit { dst, seq, attempt });
                    if let Some(m) = self.metrics.as_ref() {
                        m.retransmits.inc();
                        m.retry_latency_us.observe(waited_us);
                    }
                }
                TransportEvent::DupDrop(src, seq) => {
                    self.record(now, EventKind::DupDrop { src, seq });
                    if let Some(m) = self.metrics.as_ref() {
                        m.dup_drops.inc();
                    }
                }
                TransportEvent::Verdict(dst, seq, verdict) => {
                    self.record(now, EventKind::FaultVerdict { dst, seq, verdict });
                }
            }
        }
    }

    /// The group of all processors (world communicator).
    pub fn world(&self) -> Group {
        Group::new((0..self.nprocs()).collect(), self.id)
    }

    /// The communicator along grid dimension `dim`: all processors sharing
    /// this processor's other coordinates. Rank within the group equals the
    /// coordinate along `dim`.
    pub fn axis_group(&self, dim: usize) -> Group {
        Group::new(self.grid.axis_members(self.id, dim), self.coord(dim))
    }

    /// Send `data` to processor `dst` under `tag`.
    ///
    /// Charges the sender the full transfer time `τ + μ·m` and stamps the
    /// packet with its arrival time. A self-send moves the data but charges
    /// nothing, matching the paper's CM-5 implementation note that "local
    /// copy was not performed when a processor needed to send a message to
    /// itself". Zero-word messages are schedule padding (a real
    /// implementation would not send them at all) and are free of charge,
    /// though they still travel (and are still delivered reliably under a
    /// fault plan, since a receive may be posted for them).
    ///
    /// # Panics
    /// Panics with a typed [`MachineError::ProcCrashed`] when the machine's
    /// fault plan crashes this processor at this send step.
    pub fn send<P: Payload>(&mut self, dst: usize, tag: u64, data: P) {
        if let Some(t) = self.transport.as_mut() {
            t.send_steps += 1;
            if self.crash_armed {
                if let Some((proc, step)) = t.plan().crash() {
                    if proc == self.id && t.send_steps == step {
                        panic_any(MachineError::ProcCrashed { proc, step });
                    }
                }
            }
        }
        let words = data.wire_words();
        let data: Arc<dyn Any + Send + Sync> = Arc::new(data);
        if dst == self.id {
            let arrival_ns = self.clock.now_ns();
            let pkt = Packet {
                src: self.id,
                tag,
                arrival_ns,
                words,
                data,
                charge: None,
            };
            self.mailbox.hold(pkt);
            return;
        }
        let arrival_ns = if words == 0 {
            self.clock.now_ns()
        } else {
            self.words_to[dst] += words as u64;
            self.clock.charge_send(words)
        };
        // The payload-account gauge is charged by a guard riding inside the
        // packet: every copy of the packet (wire frame, retransmit buffer,
        // replay log) shares one `Arc<PayloadCharge>`, so the sender stays
        // charged until the last copy drops — refcount-truthful, like the
        // memory it models.
        let charge = match self.metrics.as_ref() {
            Some(m) if words > 0 => Some(Arc::new(PayloadCharge::new(
                Arc::clone(&m.mem[MemAccount::Payload as usize]),
                words as u64 * 4,
            ))),
            _ => None,
        };
        let mut logged_replay = false;
        let seq = match self.transport.as_mut() {
            None => {
                let pkt = Packet {
                    src: self.id,
                    tag,
                    arrival_ns,
                    words,
                    data,
                    charge,
                };
                // The receiver's endpoint lives as long as the run (the
                // driver parks channel endpoints until every thread joins).
                self.senders[dst].send(Frame::Raw(pkt));
                None
            }
            Some(t) => {
                // Log *before* transmitting, under the sequence number the
                // send will assign: once the frame is on the wire the
                // receiver may consume it and crash at any moment, and the
                // recovery driver's log clone must already hold everything
                // the victim consumed. The logged arrival is the *delayed*
                // one — the replayed packet must be bit-identical to the one
                // the transport puts on the wire (the delay is keyed by
                // sequence number alone).
                if let Some(rec) = self.recovery.as_ref() {
                    let s = t.next_seq_for(dst);
                    let arrival = arrival_ns + t.plan().delay_ns(self.id, dst, s);
                    rec.log_frame(
                        dst,
                        s,
                        Packet {
                            src: self.id,
                            tag,
                            arrival_ns: arrival,
                            words,
                            data: Arc::clone(&data),
                            charge: charge.clone(),
                        },
                    );
                    logged_replay = true;
                }
                let s = t.send(
                    self.id,
                    self.senders,
                    dst,
                    Packet {
                        src: self.id,
                        tag,
                        arrival_ns,
                        words,
                        data,
                        charge,
                    },
                );
                Some(s)
            }
        };
        if words > 0 {
            let bytes = words as i64 * 4;
            if self.events.is_some() {
                let now = self.clock.now_ns();
                self.record(
                    now,
                    EventKind::Send {
                        dst,
                        tag,
                        words,
                        seq,
                        arrival_ns,
                    },
                );
                // In simulated time the in-flight payload occupies the
                // sender from the send until the (pre-delay) arrival; the
                // event pair brackets exactly that interval. Recorded
                // directly — the gauge side is the guard's, not ours.
                self.record(
                    now,
                    EventKind::MemSample {
                        account: MemAccount::Payload,
                        owner: self.id,
                        delta_bytes: bytes,
                    },
                );
                self.record(
                    arrival_ns,
                    EventKind::MemSample {
                        account: MemAccount::Payload,
                        owner: self.id,
                        delta_bytes: -bytes,
                    },
                );
            }
            if logged_replay {
                // The replay log retains a copy of this frame on the
                // destination's behalf until *its* next epoch boundary:
                // charged to the destination's account (owner ≠ recorder —
                // event only; the destination squares its own gauge with
                // the truncation at the boundary).
                let now = self.clock.now_ns();
                self.mem_sample(MemAccount::ReplayLog, dst, now, bytes);
            }
            if let Some(m) = self.metrics.as_ref() {
                m.msg_sent.inc();
                m.msg_words.observe(words as u64);
            }
        }
        // The first transmission attempt may already have drawn a fault
        // verdict worth annotating.
        if seq.is_some() {
            self.drain_transport_events();
        }
    }

    /// Receive the earliest message from `src` under `tag`, blocking until it
    /// arrives. Advances the simulated clock to the packet's arrival time if
    /// the processor got there first (the wait is charged to the ambient
    /// category).
    ///
    /// # Panics
    /// Panics if the payload type does not match `P` (processors disagree on
    /// the program), or with a typed [`MachineError`] if nothing arrives
    /// within the machine's receive timeout or a peer fails first; under
    /// [`crate::Machine::run`] that error becomes the run's panic, under
    /// [`crate::Machine::try_run`] it becomes the returned `Err`. Programs
    /// that want to handle transport failure locally use
    /// [`Proc::try_recv`].
    pub fn recv<P: Payload>(&mut self, src: usize, tag: u64) -> P {
        match self.try_recv(src, tag) {
            Ok(v) => v,
            Err(e) => panic_any(e),
        }
    }

    /// Fallible receive: like [`Proc::recv`] but surfacing machine failures
    /// (timeout, poisoned run) as a typed [`MachineError`] instead of
    /// panicking. Payload type mismatch still panics — that is a program
    /// bug, not a machine failure.
    pub fn try_recv<P: Payload>(&mut self, src: usize, tag: u64) -> Result<P, MachineError> {
        self.note_recv_step();
        let pkt = self.try_recv_packet(src, tag)?;
        self.observe_consume(&pkt);
        Ok(self.extract::<P>(pkt, src, tag))
    }

    /// Unwrap a packet's payload as a `P`. The `Arc` is unwrapped in place
    /// when this receive is the last holder (the fault-free common case);
    /// when the reliable transport still shares the buffer for a possible
    /// retransmission, the payload is deep-copied and the copied volume is
    /// surfaced through the `payload.clone_words` counter.
    fn extract<P: Payload>(&mut self, pkt: Packet, src: usize, tag: u64) -> P {
        let words = pkt.words;
        match pkt.data.downcast::<P>() {
            Ok(arc) => match Arc::try_unwrap(arc) {
                Ok(v) => v,
                Err(shared) => {
                    if let Some(m) = self.metrics.as_ref() {
                        m.clone_words.add(words as u64);
                    }
                    *(*shared)
                        .clone_payload()
                        .downcast::<P>()
                        .expect("clone_payload must preserve the payload type")
                }
            },
            Err(_) => panic!(
                "proc {}: payload type mismatch on recv from {} tag {} (expected {})",
                self.id,
                src,
                tag,
                std::any::type_name::<P>()
            ),
        }
    }

    /// Count one program-level receive and fire the fault plan's recv-side
    /// crash schedule when armed. Uncharged control receives (clock sync)
    /// and the transport's internal pumping never reach this counter, so
    /// epoch boundaries are crash-free by construction.
    fn note_recv_step(&mut self) {
        if let Some(t) = self.transport.as_mut() {
            t.recv_steps += 1;
            if self.crash_armed {
                if let Some((proc, step)) = t.plan().crash_at_recv() {
                    if proc == self.id && t.recv_steps == step {
                        panic_any(MachineError::ProcCrashed { proc, step });
                    }
                }
            }
        }
    }

    /// Receive and return the packet's charged word count alongside the data.
    pub fn recv_with_words<P: Payload>(&mut self, src: usize, tag: u64) -> (P, usize) {
        self.note_recv_step();
        let pkt = match self.try_recv_packet(src, tag) {
            Ok(p) => p,
            Err(e) => panic_any(e),
        };
        self.observe_consume(&pkt);
        let words = pkt.words;
        (self.extract::<P>(pkt, src, tag), words)
    }

    /// Advance the clock to the packet's arrival (the shared receive-side
    /// charge) and record a [`EventKind::Consume`] event for charged remote
    /// traffic. Muted receives (hardware-modelled data movement) advance
    /// nothing and record nothing — their delivery/consume asymmetry is why
    /// the exporter clamps the mailbox-depth track at zero.
    fn observe_consume(&mut self, pkt: &Packet) {
        let before = self.clock.now_ns();
        self.clock.observe_arrival(pkt.arrival_ns);
        if pkt.src == self.id || pkt.words == 0 || !pkt.arrival_ns.is_finite() {
            return;
        }
        if self.events.is_some() && !self.clock.is_muted() {
            let now = self.clock.now_ns();
            self.record(
                now,
                EventKind::Consume {
                    src: pkt.src,
                    tag: pkt.tag,
                    words: pkt.words,
                    waited_ns: (now - before).max(0.0),
                    arrival_ns: pkt.arrival_ns,
                },
            );
        }
        // The mailbox account was charged at delivery whether or not this
        // consume is muted, so it is released unconditionally. A muted
        // consume does not advance the clock, which may still trail the
        // packet's arrival — clamping the stamp to the arrival keeps the
        // release at or after its matching charge.
        let ts = self.clock.now_ns().max(pkt.arrival_ns);
        self.mem_sample(MemAccount::Mailbox, self.id, ts, -(pkt.words as i64 * 4));
    }

    /// Park this virtual processor in the scheduler for at most `timeout`,
    /// keyed on the current simulated time (the deterministic wake-priority
    /// rule: among ready processors, the one furthest behind in simulated
    /// time runs first). Woken early by any frame sent to this processor or
    /// by a pool-slot return. The wait is attributed to the virtual
    /// processor's own wall profile under `sched.park` — carrier threads
    /// have no identity of their own.
    fn park(&mut self, timeout: Duration) {
        let key = self.clock.now_ns();
        let sched = Arc::clone(&self.sched);
        let id = self.id;
        self.wall_span("sched.park", |_| {
            sched.park(id, key, timeout);
        });
    }

    /// How long a wait-for-frames park may sleep without starving the
    /// reliable transport: the earliest retransmission deadline caps the
    /// park so [`crate::reliable::Transport::pump`] runs on time (this also
    /// bounds reordered-frame holdback, which retires through the same
    /// retransmit path). Fault-free machines sleep the full remainder —
    /// every frame arrival unparks them.
    fn park_wait(&self, remaining: Duration) -> Duration {
        match self
            .transport
            .as_ref()
            .and_then(|t| t.next_retry_deadline())
        {
            Some(d) => remaining.min(d.saturating_duration_since(Instant::now())),
            None => remaining,
        }
    }

    /// The frame-dispatch receive loop shared by every receive flavour.
    /// The deadline restarts whenever *any* frame arrives (progress), which
    /// matches the fault-free semantics where each successfully received
    /// packet restarted the timeout.
    fn try_recv_packet(&mut self, src: usize, tag: u64) -> Result<Packet, MachineError> {
        if let Some(p) = self.mailbox.take(src, tag) {
            return Ok(p);
        }
        let mut deadline = Instant::now() + self.recv_timeout;
        loop {
            if let Some(t) = self.transport.as_mut() {
                t.pump(self.id, self.senders)?;
                self.drain_transport_events();
            }
            match self.rx.try_recv() {
                Some(frame) => {
                    deadline = Instant::now() + self.recv_timeout;
                    self.dispatch(frame)?;
                    if let Some(p) = self.mailbox.take(src, tag) {
                        return Ok(p);
                    }
                }
                None => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(MachineError::RecvTimeout {
                            proc: self.id,
                            src,
                            tag,
                            timeout: self.recv_timeout,
                        });
                    }
                    // A frame enqueued between the probe above and this park
                    // is covered by the scheduler's wake token: the sender's
                    // unpark lands while we still run, and the park returns
                    // immediately instead of sleeping.
                    let wait = self.park_wait(deadline - now);
                    self.park(wait);
                }
            }
        }
    }

    /// Route one incoming frame: data lands in the mailbox (via the
    /// transport's ordering/dedup when sequenced), acks retire retransmit
    /// state, poison aborts this processor with the peer's failure.
    fn dispatch(&mut self, frame: Frame) -> Result<(), MachineError> {
        match frame {
            Frame::Raw(p) => {
                self.note_delivery(&p, None);
                self.mailbox.hold(p);
                self.note_mailbox_depth();
            }
            Frame::Data { seq, pkt } => {
                let ready = self
                    .transport
                    .as_mut()
                    .expect("sequenced frame on a machine without a fault plan")
                    .on_data(self.id, self.senders, seq, pkt);
                // Surface any duplicate-drop annotation the frame produced.
                self.drain_transport_events();
                for (s, p) in ready {
                    self.note_delivery(&p, Some(s));
                    self.mailbox.hold(p);
                }
                self.note_mailbox_depth();
            }
            Frame::Ack { from, seq } => {
                if let Some(t) = self.transport.as_mut() {
                    t.on_ack(from, seq);
                }
            }
            Frame::Poison(cause) => {
                return Err(MachineError::Poisoned {
                    proc: self.id,
                    cause: Box::new(cause),
                });
            }
        }
        Ok(())
    }

    /// Record one remote packet reaching the mailbox. Stamped with the
    /// packet's simulated arrival time; zero-word padding and uncharged
    /// control traffic (clock sync, `arrival = -∞`) are not observed.
    fn note_delivery(&mut self, pkt: &Packet, seq: Option<u64>) {
        if pkt.words == 0 || !pkt.arrival_ns.is_finite() {
            return;
        }
        if self.events.is_some() {
            self.record(
                pkt.arrival_ns,
                EventKind::Recv {
                    src: pkt.src,
                    tag: pkt.tag,
                    words: pkt.words,
                    seq,
                },
            );
        }
        if let Some(m) = self.metrics.as_ref() {
            m.msg_recvd.inc();
        }
        // Packet bytes now sit in the mailbox until a program-level receive
        // consumes them (released in `observe_consume`), charged at the
        // packet's simulated arrival time.
        self.mem_sample(
            MemAccount::Mailbox,
            self.id,
            pkt.arrival_ns,
            pkt.words as i64 * 4,
        );
    }

    /// Sample the mailbox backlog gauge (after a delivery).
    #[inline]
    fn note_mailbox_depth(&mut self) {
        if let Some(m) = self.metrics.as_ref() {
            m.mailbox_depth.set(self.mailbox.len() as u64);
        }
    }

    /// Synchronise the clocks of all group members to the maximum member
    /// time, *without charging anything*. Used at phase boundaries to model
    /// globally synchronised algorithm phases (the paper times each stage as
    /// the slowest processor's time for it).
    pub fn clock_sync_max(&mut self, group: &Group) {
        if group.size() == 1 {
            return;
        }
        // Dissemination exchange of `(timestamp, owner id)` pairs — the
        // combining rule (max time, ties to the lowest id) is associative,
        // commutative, and idempotent, so every member converges on the
        // same pair. The payload rides outside the cost model:
        // fast_forward never charges. The owner id lets tracing record
        // *whose* clock defined the barrier (the critical path hops there).
        let n = group.size();
        let me = group.my_rank();
        let t0 = self.clock.now_ns();
        let mut t_max = t0;
        let mut owner = self.id;
        let mut shift = 1usize;
        while shift < n {
            let to = group.id_of((me + shift) % n);
            let from = group.id_of((me + n - shift) % n);
            self.send_uncharged(to, tags::CLOCK_SYNC, vec![t_max, owner as f64]);
            let other: Vec<f64> = self.recv_uncharged(from, tags::CLOCK_SYNC);
            let (ot, oo) = (other[0], other[1] as usize);
            if ot > t_max || (ot == t_max && oo < owner) {
                t_max = ot;
                owner = oo;
            }
            shift *= 2;
        }
        self.clock.fast_forward(t_max);
        if self.events.is_some() && t_max > t0 {
            self.record(
                t_max,
                EventKind::Barrier {
                    owner,
                    waited_ns: t_max - t0,
                },
            );
        }
    }

    /// Send without touching the clock (simulator-internal control traffic,
    /// carried by the modelled control network: never fault-injected).
    ///
    /// Under crash recovery, remote control frames are sequenced through
    /// the reliable transport like everything else — an unsequenced frame
    /// consumed just before a crash could not be deduplicated against its
    /// replayed copy. Zero charged words and a `-∞` arrival keep them
    /// invisible to the cost model, events, and metrics either way.
    fn send_uncharged<P: Payload>(&mut self, dst: usize, tag: u64, data: P) {
        if dst != self.id {
            if let (Some(rec), Some(t)) = (self.recovery.as_ref(), self.transport.as_mut()) {
                let data: Arc<dyn Any + Send + Sync> = Arc::new(data);
                // Log before transmitting (see `Proc::send`): the receiver
                // may consume the frame and crash before a post-send log
                // append would land, and the replay clone must not miss it.
                rec.log_frame(
                    dst,
                    t.next_seq_for(dst),
                    Packet {
                        src: self.id,
                        tag,
                        arrival_ns: f64::NEG_INFINITY,
                        words: 0,
                        data: Arc::clone(&data),
                        charge: None,
                    },
                );
                t.send(
                    self.id,
                    self.senders,
                    dst,
                    Packet {
                        src: self.id,
                        tag,
                        arrival_ns: f64::NEG_INFINITY,
                        words: 0,
                        data,
                        charge: None,
                    },
                );
                return;
            }
        }
        let words = data.wire_words();
        let pkt = Packet {
            src: self.id,
            tag,
            arrival_ns: f64::NEG_INFINITY,
            words,
            data: Arc::new(data),
            charge: None,
        };
        if dst == self.id {
            self.mailbox.hold(pkt);
        } else {
            self.senders[dst].send(Frame::Raw(pkt));
        }
    }

    /// Receive without touching the clock.
    fn recv_uncharged<P: Payload>(&mut self, src: usize, tag: u64) -> P {
        let pkt = match self.try_recv_packet(src, tag) {
            Ok(p) => p,
            Err(e) => panic_any(e),
        };
        self.extract::<P>(pkt, src, tag)
    }

    /// Run `body` as one **epoch** — the unit of crash recovery (see
    /// [`crate::recovery`]). The epoch ends with a machine-wide barrier
    /// (transport flush + uncharged clock sync, identical whether or not
    /// recovery is attached), after which the processor's recoverable state
    /// — clock, mailbox, transport counters, pool rotation, metrics, and
    /// `state` via [`Checkpoint`] — is snapshotted under
    /// [`crate::Machine::run_recoverable`].
    ///
    /// On a respawned processor, epochs that completed before the crash are
    /// skipped (their effects live in the restored snapshot), the resume
    /// epoch first restores that snapshot and replays logged peer frames,
    /// and re-execution continues bit-identically.
    ///
    /// Under `run_recoverable`, *all* communication must happen inside
    /// epoch bodies: traffic between epochs is covered by neither the
    /// snapshot nor the replay log, and a respawned processor would hang
    /// waiting for it.
    pub fn epoch<S: Checkpoint>(&mut self, state: &mut S, body: impl FnOnce(&mut Self, &mut S)) {
        let idx = self.epoch_idx;
        self.epoch_idx += 1;
        if let Some(r) = self.resume.as_ref() {
            let at = r.resume_epoch();
            if idx < at {
                // Completed before the crash; its effects are in the
                // snapshot restored at the resume epoch.
                return;
            }
            let ctx = self.resume.take().expect("resume context present");
            self.prepare_resume(ctx, state);
        }
        body(self, state);
        self.epoch_boundary(idx, state);
    }

    /// The barrier + snapshot protocol ending every epoch. The flush before
    /// the sync guarantees every peer has acked this processor's sends; the
    /// barrier then implies *all* processors have flushed, so the transport's
    /// `expected` counters are final for the epoch and the replay log can be
    /// truncated to frames at or above them. The second flush covers the
    /// sync frames themselves, which travel sequenced under recovery.
    fn epoch_boundary<S: Checkpoint>(&mut self, idx: usize, state: &S) {
        if let Err(e) = self.finish_transport() {
            panic_any(e);
        }
        let world = self.world();
        self.clock_sync_max(&world);
        if let Err(e) = self.finish_transport() {
            panic_any(e);
        }
        let Some(rec) = self.recovery.clone() else {
            return;
        };
        let expected = self.transport.as_ref().map(|t| t.expected_all().to_vec());
        let (log_before, log_after) = rec.truncate_log(self.id, expected.as_deref());
        // Square this processor's replay-log account with the truncation.
        // Senders charged the account event-side only (owner ≠ recorder),
        // so the gauge learns the interval peak here — an absolute `set` to
        // the pre-truncation words raises `max`, a second to the floor sets
        // `cur`. The event-side release is recorded before `publish` so the
        // boundary snapshot already contains it and a crash replay cannot
        // re-free the same bytes twice.
        if log_before != log_after {
            let now = self.clock.now_ns();
            self.record(
                now,
                EventKind::MemSample {
                    account: MemAccount::ReplayLog,
                    owner: self.id,
                    delta_bytes: -((log_before - log_after) as i64 * 4),
                },
            );
        }
        if let Some(m) = self.metrics.as_ref() {
            let g = &m.mem[MemAccount::ReplayLog as usize];
            g.set(log_before * 4);
            g.set(log_after * 4);
        }
        rec.publish(
            self.id,
            EpochSnapshot {
                completed: idx,
                clock: self.clock.clone(),
                mailbox: self.mailbox.clone(),
                transport: self.transport.as_ref().map(|t| t.snapshot()),
                words_to: self.words_to.clone(),
                events: self.events.clone().unwrap_or_default(),
                metrics: self.metrics.as_ref().map(|m| m.registry.snapshot()),
                pool: self.pool.snapshot(),
                user: state.snapshot(),
            },
        );
        if let Some(m) = self.metrics.as_ref() {
            m.registry.counter("recovery.epochs").inc();
        }
    }

    /// Respawn restoration: load the boundary snapshot into this processor,
    /// then replay the logged peer frames. Runs at the top of the resume
    /// epoch, after any (re-executed, about-to-be-overwritten) earlier work.
    fn prepare_resume<S: Checkpoint>(&mut self, ctx: ResumeCtx, state: &mut S) {
        let rec = Arc::clone(self.recovery.as_ref().expect("resume without recovery"));
        let snap = ctx
            .snapshot
            .expect("snapshot-less resume handled at attach");
        self.clock = snap.clock;
        self.mailbox = snap.mailbox;
        if let (Some(t), Some(ts)) = (self.transport.as_mut(), snap.transport.as_ref()) {
            t.restore(ts);
        }
        self.words_to = snap.words_to;
        if let Some(ev) = self.events.as_mut() {
            *ev = snap.events;
        }
        if let (Some(m), Some(ms)) = (self.metrics.as_ref(), snap.metrics.as_ref()) {
            m.registry.restore(ms);
        }
        self.pool.restore(&snap.pool);
        state.restore(snap.user);
        self.inject_replay(ctx.replay, &rec);
    }

    /// Re-inject logged peer frames through the normal sequenced dispatch
    /// path: stale entries (already covered by the restored snapshot) are
    /// skipped, ordering and deduplication apply as if the frames had just
    /// arrived, and the acks posted by dispatch un-block peers parked in
    /// their boundary flush. The modelled recovery cost (`recovery_*` terms
    /// of the cost model) is recorded in metrics and stats only — never
    /// added to the simulated clock, which must stay bit-identical to the
    /// fault-free run.
    fn inject_replay(&mut self, replay: Vec<(u64, Packet)>, rec: &Arc<RecoveryState>) {
        let now = self.clock.now_ns();
        self.record(
            now,
            EventKind::Marker {
                name: "recovery.resume",
            },
        );
        self.record(
            now,
            EventKind::SpanBegin {
                name: "recovery.replay",
            },
        );
        let mut frames = 0u64;
        let mut words = 0u64;
        for (seq, pkt) in replay {
            let live = match self.transport.as_ref() {
                Some(t) => seq >= t.expected_from(pkt.src),
                None => true,
            };
            if !live {
                continue;
            }
            frames += 1;
            words += pkt.words as u64;
            if let Err(e) = self.dispatch(Frame::Data { seq, pkt }) {
                panic_any(e);
            }
        }
        let m = self.clock.model();
        let modelled_ns = m.recovery_restore_ns
            + frames as f64 * m.recovery_replay_tau_ns
            + words as f64 * m.recovery_replay_mu_ns;
        rec.note_replay(frames, words, modelled_ns);
        self.record(
            now,
            EventKind::SpanEnd {
                name: "recovery.replay",
            },
        );
        if let Some(mtr) = self.metrics.as_ref() {
            mtr.registry.counter("recovery.replays").inc();
            mtr.registry.counter("recovery.replayed_frames").add(frames);
            mtr.registry
                .counter("recovery.replay_ms")
                .add((modelled_ns / 1e6).round() as u64);
        }
    }

    /// After the program closure returns: keep pumping the transport until
    /// every one of this processor's sends has been acknowledged. Incoming
    /// data is still acked (and parked in the mailbox, where the leftover
    /// check will see it); a poison frame aborts the flush with the peer's
    /// failure.
    pub(crate) fn finish_transport(&mut self) -> Result<(), MachineError> {
        let Some(t) = self.transport.as_mut() else {
            return Ok(());
        };
        if !t.has_unacked() {
            return Ok(());
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            let mut all_acked = false;
            if let Some(t) = self.transport.as_mut() {
                t.pump(self.id, self.senders)?;
                all_acked = !t.has_unacked();
            }
            self.drain_transport_events();
            if all_acked {
                return Ok(());
            }
            if let Some(frame) = self.rx.try_recv() {
                self.dispatch(frame)?;
            } else {
                let now = Instant::now();
                if now < deadline {
                    // Park until the awaited ack arrives or the next
                    // retransmission is due (missing acks are exactly what
                    // the retry deadline tracks, so this never oversleeps).
                    let wait = self.park_wait(deadline - now);
                    self.park(wait);
                }
            }
            if Instant::now() >= deadline {
                let (dst, seq, attempts) = self
                    .transport
                    .as_ref()
                    .and_then(|t| t.oldest_unacked())
                    .expect("flush loop only runs while something is unacked");
                return Err(MachineError::Unreachable {
                    proc: self.id,
                    dst,
                    seq,
                    attempts,
                });
            }
        }
    }

    /// Number of unconsumed packets left in the mailbox (should be zero when
    /// a well-formed program finishes).
    pub(crate) fn leftover_messages(&self) -> usize {
        self.mailbox.len()
    }

    /// Tear down: fold transport diagnostics into the clock, freeze the
    /// event log and metrics, and hand the channel endpoint back so the
    /// driver can keep it alive until all processors have joined.
    pub(crate) fn into_parts(
        mut self,
    ) -> (
        SimClock,
        Vec<u64>,
        FrameReceiver,
        Vec<Event>,
        MetricsSnapshot,
        WallProfile,
    ) {
        self.drain_transport_events();
        if let Some(t) = self.transport.as_ref() {
            self.clock.note_transport(t.retransmits, t.dup_drops);
        }
        let events = self.events.take().unwrap_or_default();
        let metrics = self
            .metrics
            .take()
            .map(|m| m.registry.snapshot())
            .unwrap_or_default();
        let wall = self
            .wall
            .take()
            .map(WallProfiler::finish)
            .unwrap_or_default();
        (self.clock, self.words_to, self.rx, events, metrics, wall)
    }

    /// Charged words this processor has sent to each destination so far
    /// (self-messages and zero-word padding excluded).
    pub fn words_sent_to(&self) -> &[u64] {
        &self.words_to
    }

    /// Receive the raw packet from `src` under `tag`, leaving the payload
    /// type-erased. Clock semantics match [`Proc::recv`]; pooled exchange
    /// paths use this to defer the downcast until decode time.
    ///
    /// # Panics
    /// As [`Proc::recv`].
    pub fn recv_packet(&mut self, src: usize, tag: u64) -> Packet {
        self.note_recv_step();
        let pkt = match self.try_recv_packet(src, tag) {
            Ok(p) => p,
            Err(e) => panic_any(e),
        };
        self.observe_consume(&pkt);
        pkt
    }

    /// Check a reusable send buffer out of this processor's pool for plan
    /// `key`, destination `dst`. Advances the entry's two-slot rotation.
    ///
    /// If the slot is still staged or checked out — the receiver has not
    /// finished with the *previous* execute's send through it — this blocks
    /// (wall-clock only; the simulated clock is untouched) until the
    /// receiver returns the buffer, pumping the reliable transport and
    /// draining incoming frames meanwhile so progress is never stalled by
    /// the wait itself.
    pub fn pool_checkout<B: Reusable>(&mut self, key: u64, dst: usize) -> (Arc<PoolSlot<B>>, B) {
        let slot = self.pool.next_slot::<B>(key, dst);
        if let Some(buf) = slot.try_checkout() {
            return (slot, buf);
        }
        // Slow path: register as the slot's waker and park. The receiver's
        // `put_back` — on whatever carrier it runs — unparks this processor
        // directly, as does any incoming frame; there is no spinning or
        // polling anywhere on this path.
        slot.set_waker(Some((Arc::clone(&self.sched), self.id)));
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            if let Some(t) = self.transport.as_mut() {
                if let Err(e) = t.pump(self.id, self.senders) {
                    slot.set_waker(None);
                    panic_any(e);
                }
                self.drain_transport_events();
            }
            while let Some(frame) = self.rx.try_recv() {
                if let Err(e) = self.dispatch(frame) {
                    slot.set_waker(None);
                    panic_any(e);
                }
            }
            if let Some(buf) = slot.try_checkout() {
                slot.set_waker(None);
                return (slot, buf);
            }
            let now = Instant::now();
            if now >= deadline {
                slot.set_waker(None);
                panic!(
                    "proc {}: pool slot (key {key}, dst {dst}) was never returned \
                     within {:?} — receiver stalled or plan executed unevenly",
                    self.id, self.recv_timeout
                );
            }
            let wait = self.park_wait(deadline - now);
            self.park(wait);
        }
    }

    /// The slot most recently checked out for `(key, dst)` — the one whose
    /// buffer is currently staged/in flight. The self-message path uses
    /// this at decode time (sender and receiver are the same processor).
    pub fn pool_current<B: Reusable>(&self, key: u64, dst: usize) -> Arc<PoolSlot<B>> {
        self.pool.current_slot::<B>(key, dst)
    }

    /// Send the staged contents of a pooled slot to `dst` under `tag`.
    ///
    /// Identical to [`Proc::send`] in every charged and observed respect —
    /// crash-step accounting, `τ + μ·m` charge, events, metrics — but the
    /// packet payload is the `Arc`-shared slot itself: no buffer changes
    /// hands, and the receiver returns it via [`PoolSlot::put_back`].
    pub fn send_pooled<B: Reusable>(&mut self, dst: usize, tag: u64, slot: &Arc<PoolSlot<B>>) {
        debug_assert_ne!(dst, self.id, "self slots are decoded in place, never sent");
        assert!(
            self.recovery.is_none(),
            "pooled sends are unavailable under crash recovery: a replayed \
             packet must keep sharing its original payload, which an in-place \
             reused pool buffer would have overwritten (planned executes fall \
             back to the owned-buffer path; see Proc::recovery_enabled)"
        );
        if let Some(t) = self.transport.as_mut() {
            t.send_steps += 1;
            if self.crash_armed {
                if let Some((proc, step)) = t.plan().crash() {
                    if proc == self.id && t.send_steps == step {
                        panic_any(MachineError::ProcCrashed { proc, step });
                    }
                }
            }
        }
        let words = slot.staged_words();
        let data: Arc<dyn Any + Send + Sync> = Arc::clone(slot) as _;
        // A pooled buffer's footprint is its high-water capacity, charged
        // once to the pool account as it grows and never released (the
        // buffer is reused for the plan's lifetime). Steady-state sends
        // through a warm slot charge nothing, preserving the executor's
        // allocation-free hot path — no `PayloadCharge` guard either, for
        // the same reason: the slot, not the wire, owns these bytes.
        if !(self.events.is_none() && self.metrics.is_none()) {
            let growth = slot.note_charged(words as u64 * 4);
            if growth > 0 {
                let now = self.clock.now_ns();
                self.mem_sample(MemAccount::Pool, self.id, now, growth as i64);
            }
        }
        let arrival_ns = if words == 0 {
            self.clock.now_ns()
        } else {
            self.words_to[dst] += words as u64;
            self.clock.charge_send(words)
        };
        let seq = match self.transport.as_mut() {
            None => {
                let pkt = Packet {
                    src: self.id,
                    tag,
                    arrival_ns,
                    words,
                    data,
                    charge: None,
                };
                self.senders[dst].send(Frame::Raw(pkt));
                None
            }
            Some(t) => Some(t.send(
                self.id,
                self.senders,
                dst,
                Packet {
                    src: self.id,
                    tag,
                    arrival_ns,
                    words,
                    data,
                    charge: None,
                },
            )),
        };
        if words > 0 {
            if self.events.is_some() {
                let now = self.clock.now_ns();
                self.record(
                    now,
                    EventKind::Send {
                        dst,
                        tag,
                        words,
                        seq,
                        arrival_ns,
                    },
                );
            }
            if let Some(m) = self.metrics.as_ref() {
                m.msg_sent.inc();
                m.msg_words.observe(words as u64);
            }
        }
        if seq.is_some() {
            self.drain_transport_events();
        }
    }

    /// Borrow the processor's pre-reserved packet scratch vector (empty,
    /// capacity ≥ P). Callers must hand it back with
    /// [`Proc::restore_pkt_scratch`] once drained.
    pub fn take_pkt_scratch(&mut self) -> Vec<Packet> {
        debug_assert!(self.pkt_scratch.is_empty());
        std::mem::take(&mut self.pkt_scratch)
    }

    /// Return the packet scratch vector, keeping its capacity for the next
    /// pooled exchange.
    pub fn restore_pkt_scratch(&mut self, mut scratch: Vec<Packet>) {
        scratch.clear();
        self.pkt_scratch = scratch;
    }

    /// Record the worker thread's allocation totals for this run in the
    /// `alloc.count` / `alloc.bytes` counters (no-op without metrics; zeros
    /// unless the binary installs [`crate::alloc_counter::CountingAllocator`]).
    pub(crate) fn note_alloc_totals(&mut self, count: u64, bytes: u64) {
        if let Some(m) = self.metrics.as_ref() {
            m.registry.counter("alloc.count").add(count);
            m.registry.counter("alloc.bytes").add(bytes);
        }
    }
}
