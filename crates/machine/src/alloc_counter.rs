//! Per-thread allocation counting for the zero-allocation gate.
//!
//! Wall-clock timing is noisy; allocation counts are deterministic. The
//! bench harness (and the dedicated zero-alloc integration test) install
//! [`CountingAllocator`] as their `#[global_allocator]` and read
//! [`thread_totals`] before/after the steady-state execute loop — the delta
//! is the number of heap allocations the hot path performed. The library
//! itself never installs a global allocator; binaries opt in.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A `System`-backed allocator that counts allocations per thread.
///
/// Only `alloc`/`realloc` count (frees are not: the gate is about acquiring
/// memory in the hot loop). Counters are thread-local, so each virtual
/// processor's worker thread observes exactly its own allocations.
pub struct CountingAllocator;

/// Record one allocation event of `bytes` against this thread, tolerating
/// thread-local storage teardown (allocations can happen while TLS
/// destructors run).
fn note(bytes: usize) {
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY: defers entirely to `System`; counting has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }
}

/// `(allocation count, allocated bytes)` for the calling thread since it
/// started. Returns zeros unless a [`CountingAllocator`] is installed as
/// the global allocator.
pub fn thread_totals() -> (u64, u64) {
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (count, bytes)
}
