//! # hpf-machine — a simulated coarse-grained distributed memory machine
//!
//! This crate is the hardware substrate for the PACK/UNPACK reproduction
//! (Bae & Ranka, IPPS 1996). The paper evaluates on a CM-5 but analyses all
//! algorithms under a *two-level model*: any processor can send a message of
//! `m` words to any other for `τ + μ·m`, a unit of local computation costs
//! `δ`, and the network behaves like a virtual crossbar (no distance or
//! congestion effects). We implement that model directly:
//!
//! * a [`Machine`] runs an SPMD closure on `P` virtual processors (real OS
//!   threads) arranged on a logical [`ProcGrid`];
//! * each [`Proc`] owns a private [`SimClock`] charged by every send and by
//!   explicit local-operation charges; packets carry arrival timestamps so
//!   clock propagation is exact without global synchronisation;
//! * [`collectives`] provides the paper's communication primitives: the
//!   fused vector prefix-reduction-sum (direct and split algorithms,
//!   Section 5.1) and many-to-many personalized communication with linear
//!   permutation scheduling (Section 7).
//!
//! ## Example
//!
//! ```
//! use hpf_machine::{Machine, CostModel, ProcGrid, Category};
//! use hpf_machine::collectives::{prefix_reduction_sum, PrsAlgorithm};
//!
//! let machine = Machine::new(ProcGrid::line(4), CostModel::cm5());
//! let out = machine.run(|proc| {
//!     proc.clock().set_category(Category::PrefixReductionSum);
//!     let world = proc.world();
//!     let local = vec![proc.id() as i32 + 1; 8];
//!     let (prefix, total) = prefix_reduction_sum(proc, &world, &local, PrsAlgorithm::Auto);
//!     (prefix[0], total[0])
//! });
//! assert_eq!(out.results, vec![(0, 10), (1, 10), (3, 10), (6, 10)]);
//! assert!(out.max_cat_ms(Category::PrefixReductionSum) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod alloc_counter;
mod chan;
pub mod collectives;
mod cost;
mod error;
pub mod fault;
mod machine;
mod message;
pub mod obs;
pub mod pool;
mod proc;
pub mod recovery;
mod reliable;
mod report;
mod sched;
mod topology;
pub mod trace;

pub use chan::{default_capacity, ring_bytes};
pub use cost::{Category, ClockReport, CostModel, SimClock, Words};
pub use error::MachineError;
pub use fault::{FaultPlan, LinkFaults};
pub use machine::Machine;
pub use message::{Mailbox, Packet, Payload, Wire};
pub use obs::{
    folded_stacks, Event, EventKind, MemAccount, MetricsSnapshot, ObsConfig, WallProfile,
    WallProfiler, WallSpan,
};
pub use pool::{fresh_pool_key, BufferPool, PoolSlot, Reusable};
pub use proc::{tags, Group, Proc};
pub use recovery::{Checkpoint, RecoveryStats};
pub use report::{Breakdown, RunOutput};
pub use topology::ProcGrid;
