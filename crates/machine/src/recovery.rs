//! Crash recovery: epoch checkpoints plus a deterministic frame-replay log.
//!
//! Under [`crate::Machine::run_recoverable`] the run is divided into
//! **epochs**: a program threads one piece of user state through
//! [`crate::Proc::epoch`] calls, and every epoch ends with a machine-wide
//! barrier after which each processor publishes a snapshot of its
//! recoverable state (simulated clock, mailbox, reliable-transport sequence
//! state, buffer-pool rotation, metrics, and the user state via the
//! [`Checkpoint`] trait). Peers additionally retain an `Arc`-backed
//! **replay log** of every sequenced frame sent since the receiver's last
//! epoch boundary — a refcount bump per frame, truncated at each boundary.
//!
//! When a processor crashes (a scheduled [`crate::FaultPlan`] crash), the
//! driver respawns its thread from the last published snapshot, re-injects
//! the logged frames through the normal transport dispatch path (sequence
//! numbers dedup the overlap with frames still queued in the surviving
//! channel), and re-executes the interrupted epoch. Because fault verdicts
//! and delays are drawn from sequence numbers, the re-execution redraws
//! identical outcomes and the recovered run is bit-identical to the
//! fault-free one — results *and* simulated clocks.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::cost::SimClock;
use crate::message::{Mailbox, Packet};
use crate::obs::{Event, MetricsSnapshot};
use crate::pool::PoolSnapshot;
use crate::reliable::TransportSnapshot;

/// User state that can be checkpointed at epoch boundaries.
///
/// A blanket implementation covers every `Clone + Send + 'static` type, so
/// ordinary program state (vectors, structs of plain data) checkpoints with
/// no ceremony. The snapshot is taken *after* the epoch's barrier, so it is
/// globally consistent with every peer's snapshot of the same epoch.
pub trait Checkpoint: 'static {
    /// Capture the state as an owned, type-erased snapshot.
    fn snapshot(&self) -> Box<dyn Any + Send>;
    /// Replace `self` with a previously captured snapshot.
    ///
    /// # Panics
    /// Panics if `snap` was not produced by `Self::snapshot` (the program
    /// changed between crash and respawn — a harness bug, not a data bug).
    fn restore(&mut self, snap: Box<dyn Any + Send>);
}

impl<T: Clone + Send + 'static> Checkpoint for T {
    fn snapshot(&self) -> Box<dyn Any + Send> {
        Box::new(self.clone())
    }

    fn restore(&mut self, snap: Box<dyn Any + Send>) {
        *self = *snap
            .downcast::<T>()
            .expect("checkpoint snapshot type does not match the state it restores");
    }
}

/// One processor's recoverable state as published at an epoch boundary.
pub(crate) struct EpochSnapshot {
    /// Index of the epoch this snapshot completed (0-based).
    pub(crate) completed: usize,
    /// The simulated clock, including its category breakdown and trace.
    pub(crate) clock: SimClock,
    /// Unconsumed packets (self-sends and early next-epoch arrivals).
    pub(crate) mailbox: Mailbox,
    /// Sequence/ack counters of the reliable transport, when one exists.
    pub(crate) transport: Option<TransportSnapshot>,
    /// Charged words sent per destination so far.
    pub(crate) words_to: Vec<u64>,
    /// Structured event log so far (empty unless tracing).
    pub(crate) events: Vec<Event>,
    /// Metric registry snapshot (None unless metrics are on).
    pub(crate) metrics: Option<MetricsSnapshot>,
    /// Buffer-pool slot rotation (which slot each entry hands out next).
    pub(crate) pool: PoolSnapshot,
    /// The program's own state, captured through [`Checkpoint`].
    pub(crate) user: Box<dyn Any + Send>,
}

/// What a respawned processor needs to resume: the last snapshot (if any
/// epoch completed before the crash) and the replay log of frames addressed
/// to it since that boundary.
pub(crate) struct ResumeCtx {
    pub(crate) snapshot: Option<EpochSnapshot>,
    pub(crate) replay: Vec<(u64, Packet)>,
}

impl ResumeCtx {
    /// First epoch index the respawned processor must re-execute.
    pub(crate) fn resume_epoch(&self) -> usize {
        self.snapshot.as_ref().map_or(0, |s| s.completed + 1)
    }
}

/// The per-destination replay log: sequenced frames sent to one processor
/// since its last epoch boundary, in per-sender sequence order.
#[derive(Default)]
struct ReplayLog {
    frames: Vec<(u64, Packet)>,
    /// Charged words currently retained (the log's memory bound).
    words: u64,
}

/// Shared recovery state for one `run_recoverable` call: replay logs and
/// snapshot slots for every processor, plus run-wide counters the driver
/// surfaces as [`RecoveryStats`].
pub(crate) struct RecoveryState {
    /// Indexed by *destination* processor.
    logs: Vec<Mutex<ReplayLog>>,
    /// Indexed by processor; overwritten at each epoch boundary.
    snapshots: Vec<Mutex<Option<EpochSnapshot>>>,
    epochs: AtomicU64,
    replays: AtomicU64,
    replayed_frames: AtomicU64,
    replayed_words: AtomicU64,
    /// Modelled replay time, summed over recoveries, in integer ns.
    replay_ns: AtomicU64,
    /// Current total charged words retained across all logs.
    log_words: AtomicU64,
    /// High-water mark of `log_words` — the replay-log memory bound actually
    /// reached, in charged words.
    log_high_water_words: AtomicU64,
}

impl RecoveryState {
    pub(crate) fn new(nprocs: usize) -> Self {
        RecoveryState {
            logs: (0..nprocs)
                .map(|_| Mutex::new(ReplayLog::default()))
                .collect(),
            snapshots: (0..nprocs).map(|_| Mutex::new(None)).collect(),
            epochs: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            replayed_frames: AtomicU64::new(0),
            replayed_words: AtomicU64::new(0),
            replay_ns: AtomicU64::new(0),
            log_words: AtomicU64::new(0),
            log_high_water_words: AtomicU64::new(0),
        }
    }

    /// Append one sequenced frame to `dst`'s replay log (an `Arc` bump).
    pub(crate) fn log_frame(&self, dst: usize, seq: u64, pkt: Packet) {
        let words = pkt.words as u64;
        let mut log = self.logs[dst].lock().unwrap();
        log.frames.push((seq, pkt));
        log.words += words;
        drop(log);
        let now = self.log_words.fetch_add(words, Relaxed) + words;
        self.log_high_water_words.fetch_max(now, Relaxed);
    }

    /// Drop every logged frame `dst` has provably consumed: with the
    /// boundary flush complete, anything below the receiver's next expected
    /// sequence per sender is covered by the snapshot taken at this
    /// boundary. `expected[src]` comes from `dst`'s own transport; `None`
    /// (no transport, hence no sequenced traffic) clears the log. Returns
    /// the log's charged words `(before, after)` truncation — the interval
    /// peak and the truncation floor the caller's memory accounting records.
    pub(crate) fn truncate_log(&self, dst: usize, expected: Option<&[u64]>) -> (u64, u64) {
        let mut log = self.logs[dst].lock().unwrap();
        let before = log.words;
        match expected {
            None => log.frames.clear(),
            Some(exp) => log.frames.retain(|(seq, pkt)| *seq >= exp[pkt.src]),
        }
        log.words = log.frames.iter().map(|(_, p)| p.words as u64).sum();
        let after = log.words;
        let freed = before - after;
        drop(log);
        self.log_words.fetch_sub(freed, Relaxed);
        (before, after)
    }

    /// Clone `dst`'s current replay log (packets share payloads by refcount).
    pub(crate) fn clone_log(&self, dst: usize) -> Vec<(u64, Packet)> {
        self.logs[dst].lock().unwrap().frames.clone()
    }

    /// Publish `id`'s boundary snapshot, replacing the previous epoch's.
    pub(crate) fn publish(&self, id: usize, snap: EpochSnapshot) {
        *self.snapshots[id].lock().unwrap() = Some(snap);
        self.epochs.fetch_add(1, Relaxed);
    }

    /// Hand `id`'s latest snapshot to the driver for a respawn.
    pub(crate) fn take_snapshot(&self, id: usize) -> Option<EpochSnapshot> {
        self.snapshots[id].lock().unwrap().take()
    }

    /// Account one completed replay (driven by the respawned processor).
    pub(crate) fn note_replay(&self, frames: u64, words: u64, modelled_ns: f64) {
        self.replays.fetch_add(1, Relaxed);
        self.replayed_frames.fetch_add(frames, Relaxed);
        self.replayed_words.fetch_add(words, Relaxed);
        self.replay_ns
            .fetch_add(modelled_ns.max(0.0) as u64, Relaxed);
    }

    pub(crate) fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            epochs: self.epochs.load(Relaxed),
            replays: self.replays.load(Relaxed),
            replayed_frames: self.replayed_frames.load(Relaxed),
            replayed_words: self.replayed_words.load(Relaxed),
            log_high_water_words: self.log_high_water_words.load(Relaxed),
            replay_ms: self.replay_ns.load(Relaxed) as f64 / 1e6,
        }
    }
}

/// Run-wide recovery accounting, surfaced on
/// [`crate::RunOutput::recovery`] after a [`crate::Machine::run_recoverable`]
/// call (`None` for plain runs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryStats {
    /// Epoch boundaries crossed, summed over processors.
    pub epochs: u64,
    /// Crash recoveries performed (0 for a fault-free run).
    pub replays: u64,
    /// Frames re-injected from replay logs across all recoveries.
    pub replayed_frames: u64,
    /// Charged words re-injected from replay logs across all recoveries.
    pub replayed_words: u64,
    /// High-water mark of charged words retained across all replay logs —
    /// the memory bound the epoch protocol actually reached.
    pub log_high_water_words: u64,
    /// Modelled recovery time (cost-model `recovery_*` terms), summed over
    /// recoveries, in milliseconds. Kept out of the simulated clocks so a
    /// recovered run stays bit-identical to the fault-free one.
    pub replay_ms: f64,
}
