//! The two-level cost model of Section 2 of the paper, and the per-processor
//! simulated clock that algorithms charge as they run.
//!
//! The model assumes a *virtual crossbar*: the cost of sending a message of
//! `m` words between any two processors is `τ + μ·m`, independent of distance
//! and link congestion, and the cost of one unit of local computation is `δ`.
//! These assumptions "closely model the behavior of the CM-5 on which our
//! experimental results are presented" (paper, Section 2); they also make the
//! simulated timings architecture-independent, which is exactly why the
//! paper's algorithms are portable.

use std::fmt;

/// A *word* is the unit of message volume: one 4-byte array element.
/// Multi-word payloads (index/value pairs, segment headers) count each word.
pub type Words = usize;

/// The machine constants `δ` (local op), `τ` (message start-up) and `μ`
/// (per-word transfer time).
///
/// All times are kept in nanoseconds as `f64`; experiment reports convert to
/// milliseconds to match the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one unit of local computation (one elementary loop body:
    /// a couple of memory accesses plus ALU work), in nanoseconds.
    pub delta_ns: f64,
    /// Message start-up cost `τ`, in nanoseconds.
    pub tau_ns: f64,
    /// Per-word transfer time `μ`, in nanoseconds per 4-byte word.
    pub mu_ns: f64,
    /// Control-network scan start-up, in nanoseconds. The CM-5 has a
    /// dedicated combine/scan network (the paper's footnote 2: with it,
    /// each scan primitive runs in `O(M)` time with a small constant);
    /// these two constants model it for `PrsAlgorithm::Hardware`.
    pub cn_tau_ns: f64,
    /// Control-network per-element scan time, in nanoseconds.
    pub cn_mu_ns: f64,
    /// Crash recovery: fixed cost of restoring a checkpoint on a respawned
    /// processor, in nanoseconds. These three `recovery_*` terms price the
    /// recovery protocol (see [`crate::recovery`]) for the
    /// `recovery.replay_ms` metric and [`crate::RunOutput::recovery`] — they
    /// are *never* added to the simulated clock, so a recovered run stays
    /// bit-identical to the fault-free one.
    pub recovery_restore_ns: f64,
    /// Crash recovery: per-replayed-frame re-injection cost (a τ-like
    /// start-up term), in nanoseconds.
    pub recovery_replay_tau_ns: f64,
    /// Crash recovery: per-replayed-word re-injection cost (a μ-like
    /// transfer term), in nanoseconds per 4-byte word.
    pub recovery_replay_mu_ns: f64,
}

impl CostModel {
    /// CM-5-flavoured constants: `τ = 86 µs` start-up (CMMD active-message
    /// era), `μ = 0.5 µs/word` (≈ 8 MB/s per-node sustained), `δ = 0.25 µs`
    /// per elementary local operation (33 MHz SPARC with memory traffic),
    /// and a control network doing one scan in `≈ 4 µs + 1 µs/element`.
    ///
    /// Absolute values only anchor the scale; every comparison in the paper
    /// (scheme crossovers, block-size sensitivity) depends on ratios of
    /// operation counts, which the simulator counts exactly.
    pub fn cm5() -> Self {
        CostModel {
            delta_ns: 250.0,
            tau_ns: 86_000.0,
            mu_ns: 500.0,
            cn_tau_ns: 4_000.0,
            cn_mu_ns: 1_000.0,
            // Recovery terms: a checkpoint restore costs about one τ-scale
            // round trip of bookkeeping; replaying a logged frame is a local
            // re-injection (no wire), priced like a control-network op.
            recovery_restore_ns: 500_000.0,
            recovery_replay_tau_ns: 4_000.0,
            recovery_replay_mu_ns: 1_000.0,
        }
    }

    /// A model in which all charges are free. Useful for tests that check
    /// data movement only.
    pub fn zero() -> Self {
        CostModel {
            delta_ns: 0.0,
            tau_ns: 0.0,
            mu_ns: 0.0,
            cn_tau_ns: 0.0,
            cn_mu_ns: 0.0,
            recovery_restore_ns: 0.0,
            recovery_replay_tau_ns: 0.0,
            recovery_replay_mu_ns: 0.0,
        }
    }

    /// Full transfer time `τ + μ·m` for a message of `m` words.
    #[inline]
    pub fn msg_ns(&self, words: Words) -> f64 {
        self.tau_ns + self.mu_ns * words as f64
    }

    /// Time for `n` elementary local operations, `δ·n`.
    #[inline]
    pub fn ops_ns(&self, ops: usize) -> f64 {
        self.delta_ns * ops as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cm5()
    }
}

/// What a charge is *for*. The paper's Section 7 reports break total
/// execution time into exactly these buckets: local computation, the vector
/// prefix-reduction-sum, and many-to-many personalized communication; the
/// redistribution schemes of Section 6.3 additionally separate communication
/// detection from the redistribution traffic itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Ranking-stage local work plus message composition/decomposition
    /// (what Figure 3 plots).
    LocalComp,
    /// The vector prefix-reduction-sum collective (Section 5.1).
    PrefixReductionSum,
    /// Many-to-many personalized communication in the redistribution stage.
    ManyToMany,
    /// Communication detection for array redistribution (Section 6.3, [7]).
    RedistDetect,
    /// Data movement of a preliminary array redistribution (Red.1 / Red.2).
    RedistComm,
    /// Anything else (collective glue, experiment setup inside timed region).
    Other,
}

impl Category {
    /// All categories, in report order.
    pub const ALL: [Category; 6] = [
        Category::LocalComp,
        Category::PrefixReductionSum,
        Category::ManyToMany,
        Category::RedistDetect,
        Category::RedistComm,
        Category::Other,
    ];

    /// Stable index into per-category accumulation arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Category::LocalComp => 0,
            Category::PrefixReductionSum => 1,
            Category::ManyToMany => 2,
            Category::RedistDetect => 3,
            Category::RedistComm => 4,
            Category::Other => 5,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Category::LocalComp => "local",
            Category::PrefixReductionSum => "prs",
            Category::ManyToMany => "m2m",
            Category::RedistDetect => "detect",
            Category::RedistComm => "redist",
            Category::Other => "other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-processor simulated clock.
///
/// `now_ns` is the processor's local time. Sending advances the sender by the
/// full transfer time and stamps the packet with its arrival time; receiving
/// advances the receiver to at least the arrival time (the receiver may
/// already be later — then the message was waiting in the network and costs
/// the receiver nothing extra). This is the standard way to realise the
/// paper's two-level model without global synchronisation.
#[derive(Debug, Clone)]
pub struct SimClock {
    model: CostModel,
    now_ns: f64,
    by_cat: [f64; Category::ALL.len()],
    /// Current attribution for subsequent charges.
    category: Category,
    /// Total charged local operations (diagnostics / model validation).
    ops: u64,
    /// Charged local operations per [`Category`]. Pure counters — they never
    /// depend on the cost model, so they measure *work*, not time (the §6.4
    /// conformance checks compare these against the closed-form formulas).
    ops_by_cat: [u64; Category::ALL.len()],
    /// Total charged message words sent (diagnostics).
    words_sent: u64,
    /// Total message start-ups paid (diagnostics).
    startups: u64,
    /// Reliable-transport retransmissions (diagnostic only: wall-clock
    /// dependent, never charged to simulated time).
    retransmits: u64,
    /// Duplicate frames discarded by the reliable transport (diagnostic).
    dup_drops: u64,
    /// When muted, all charges are suppressed (used to move data that a
    /// modelled hardware unit would carry, then charge the model instead).
    muted: bool,
    /// When tracing, completed category spans plus the start of the open
    /// span.
    trace: Option<(Vec<crate::trace::Span>, f64)>,
}

impl SimClock {
    /// A zeroed clock charging against `model`.
    pub fn new(model: CostModel) -> Self {
        SimClock {
            model,
            now_ns: 0.0,
            by_cat: [0.0; Category::ALL.len()],
            category: Category::Other,
            ops: 0,
            ops_by_cat: [0; Category::ALL.len()],
            words_sent: 0,
            startups: 0,
            retransmits: 0,
            dup_drops: 0,
            muted: false,
            trace: None,
        }
    }

    /// Fold reliable-transport diagnostics into the clock so they appear in
    /// the final [`ClockReport`]. These counters never affect `now_ns`.
    pub fn note_transport(&mut self, retransmits: u64, dup_drops: u64) {
        self.retransmits += retransmits;
        self.dup_drops += dup_drops;
    }

    /// Start recording category spans (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some((Vec::new(), self.now_ns));
    }

    /// Take the recorded spans, closing the open one at the current time.
    pub fn take_trace(&mut self) -> Vec<crate::trace::Span> {
        match self.trace.take() {
            Some((mut spans, start)) => {
                if self.now_ns > start {
                    spans.push(crate::trace::Span {
                        category: self.category,
                        start_ns: start,
                        end_ns: self.now_ns,
                    });
                }
                spans
            }
            None => Vec::new(),
        }
    }

    /// The cost model this clock charges against.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Current simulated local time, nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Set the ambient category for subsequent charges; returns the previous
    /// one so callers can restore it.
    pub fn set_category(&mut self, cat: Category) -> Category {
        if cat != self.category {
            if let Some((spans, start)) = self.trace.as_mut() {
                if self.now_ns > *start {
                    spans.push(crate::trace::Span {
                        category: self.category,
                        start_ns: *start,
                        end_ns: self.now_ns,
                    });
                }
                *start = self.now_ns;
            }
        }
        std::mem::replace(&mut self.category, cat)
    }

    /// The ambient category.
    #[inline]
    pub fn category(&self) -> Category {
        self.category
    }

    /// Charge `n` elementary local operations (`δ·n`) to the ambient category.
    #[inline]
    pub fn charge_ops(&mut self, ops: usize) {
        if self.muted {
            return;
        }
        let ns = self.model.ops_ns(ops);
        self.ops += ops as u64;
        self.ops_by_cat[self.category.index()] += ops as u64;
        self.advance(ns);
    }

    /// Charge one hardware control-network scan over `elems` elements:
    /// `cn_τ + cn_μ·elems` (the paper's footnote 2 — on the CM-5 a scan
    /// primitive runs in `O(M)` time on the dedicated network).
    #[inline]
    pub fn charge_hw_scan(&mut self, elems: usize) {
        if self.muted {
            return;
        }
        let ns = self.model.cn_tau_ns + self.model.cn_mu_ns * elems as f64;
        self.advance(ns);
    }

    /// Suppress or restore charging; returns the previous state. While
    /// muted, sends, ops, and arrival waits cost nothing.
    pub fn set_muted(&mut self, muted: bool) -> bool {
        std::mem::replace(&mut self.muted, muted)
    }

    /// Whether charging is currently suppressed.
    #[inline]
    pub fn is_muted(&self) -> bool {
        self.muted
    }

    /// Charge a message send of `words` words: `τ + μ·words`. Returns the
    /// packet's arrival time at the receiver. Self-messages must not be
    /// charged (see `Proc::send`), mirroring the paper's note that "local
    /// copy was not performed when a processor needed to send a message to
    /// itself".
    #[inline]
    pub fn charge_send(&mut self, words: Words) -> f64 {
        if self.muted {
            return self.now_ns;
        }
        let ns = self.model.msg_ns(words);
        self.words_sent += words as u64;
        self.startups += 1;
        self.advance(ns);
        self.now_ns
    }

    /// Observe a message arriving at `arrival_ns`: the receiver cannot
    /// proceed before the message exists. Waiting time is attributed to the
    /// ambient category.
    #[inline]
    pub fn observe_arrival(&mut self, arrival_ns: f64) {
        if self.muted {
            return;
        }
        if arrival_ns > self.now_ns {
            let wait = arrival_ns - self.now_ns;
            self.advance(wait);
        }
    }

    /// Jump this clock forward to `t_ns` if it is behind, *without* charging
    /// any category (used for uncharged clock synchronisation at phase
    /// boundaries).
    #[inline]
    pub fn fast_forward(&mut self, t_ns: f64) {
        if t_ns > self.now_ns {
            self.now_ns = t_ns;
        }
    }

    #[inline]
    fn advance(&mut self, ns: f64) {
        self.now_ns += ns;
        self.by_cat[self.category.index()] += ns;
    }

    /// Freeze this clock into a report.
    pub fn report(&self) -> ClockReport {
        ClockReport {
            now_ns: self.now_ns,
            by_cat: self.by_cat,
            ops: self.ops,
            ops_by_cat: self.ops_by_cat,
            words_sent: self.words_sent,
            startups: self.startups,
            retransmits: self.retransmits,
            dup_drops: self.dup_drops,
        }
    }

    /// Reset time and counters to zero (model and category are kept).
    pub fn reset(&mut self) {
        self.now_ns = 0.0;
        self.by_cat = [0.0; Category::ALL.len()];
        self.ops = 0;
        self.ops_by_cat = [0; Category::ALL.len()];
        self.words_sent = 0;
        self.startups = 0;
        self.retransmits = 0;
        self.dup_drops = 0;
    }
}

/// Immutable snapshot of a processor's simulated clock at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockReport {
    /// Final local time, nanoseconds.
    pub now_ns: f64,
    /// Time attributed to each [`Category`], indexed by `Category::index`.
    pub by_cat: [f64; Category::ALL.len()],
    /// Total elementary operations charged.
    pub ops: u64,
    /// Elementary operations charged per [`Category`], indexed by
    /// `Category::index`. Cost-model independent (counts, not times).
    pub ops_by_cat: [u64; Category::ALL.len()],
    /// Total message words sent (self-messages excluded).
    pub words_sent: u64,
    /// Total message start-ups paid.
    pub startups: u64,
    /// Reliable-transport retransmissions performed (0 without a fault
    /// plan). Wall-clock dependent: a diagnostic, not a simulated cost.
    pub retransmits: u64,
    /// Duplicate frames the reliable transport discarded (0 without a
    /// fault plan).
    pub dup_drops: u64,
}

impl ClockReport {
    /// Time spent in one category, nanoseconds.
    #[inline]
    pub fn cat_ns(&self, cat: Category) -> f64 {
        self.by_cat[cat.index()]
    }

    /// Time spent in one category, milliseconds (the paper's unit).
    #[inline]
    pub fn cat_ms(&self, cat: Category) -> f64 {
        self.cat_ns(cat) / 1e6
    }

    /// Final local time in milliseconds.
    #[inline]
    pub fn now_ms(&self) -> f64 {
        self.now_ns / 1e6
    }

    /// Elementary operations charged to one category.
    #[inline]
    pub fn cat_ops(&self, cat: Category) -> u64 {
        self.ops_by_cat[cat.index()]
    }

    /// An all-zero report.
    pub fn zero() -> Self {
        ClockReport {
            now_ns: 0.0,
            by_cat: [0.0; Category::ALL.len()],
            ops: 0,
            ops_by_cat: [0; Category::ALL.len()],
            words_sent: 0,
            startups: 0,
            retransmits: 0,
            dup_drops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_cost_is_tau_plus_mu_m() {
        let m = CostModel {
            delta_ns: 1.0,
            tau_ns: 100.0,
            mu_ns: 2.0,
            ..CostModel::zero()
        };
        assert_eq!(m.msg_ns(0), 100.0);
        assert_eq!(m.msg_ns(10), 120.0);
    }

    #[test]
    fn ops_cost_is_delta_n() {
        let m = CostModel {
            delta_ns: 3.0,
            tau_ns: 0.0,
            mu_ns: 0.0,
            ..CostModel::zero()
        };
        assert_eq!(m.ops_ns(7), 21.0);
    }

    #[test]
    fn clock_accumulates_by_category() {
        let mut c = SimClock::new(CostModel {
            delta_ns: 1.0,
            tau_ns: 10.0,
            mu_ns: 1.0,
            ..CostModel::zero()
        });
        c.set_category(Category::LocalComp);
        c.charge_ops(5);
        c.set_category(Category::ManyToMany);
        c.charge_send(10); // 10 + 10 = 20
        let r = c.report();
        assert_eq!(r.cat_ns(Category::LocalComp), 5.0);
        assert_eq!(r.cat_ns(Category::ManyToMany), 20.0);
        assert_eq!(r.now_ns, 25.0);
        assert_eq!(r.ops, 5);
        assert_eq!(r.words_sent, 10);
        assert_eq!(r.startups, 1);
    }

    #[test]
    fn observe_arrival_only_moves_forward() {
        let mut c = SimClock::new(CostModel::zero());
        c.fast_forward(100.0);
        c.observe_arrival(50.0); // already later: no-op
        assert_eq!(c.now_ns(), 100.0);
        c.observe_arrival(150.0);
        assert_eq!(c.now_ns(), 150.0);
    }

    #[test]
    fn wait_time_is_attributed_to_ambient_category() {
        let mut c = SimClock::new(CostModel::zero());
        c.set_category(Category::PrefixReductionSum);
        c.observe_arrival(42.0);
        assert_eq!(c.report().cat_ns(Category::PrefixReductionSum), 42.0);
    }

    #[test]
    fn fast_forward_charges_nothing() {
        let mut c = SimClock::new(CostModel::cm5());
        c.set_category(Category::LocalComp);
        c.fast_forward(1e9);
        let r = c.report();
        assert_eq!(r.cat_ns(Category::LocalComp), 0.0);
        assert_eq!(r.now_ns, 1e9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = SimClock::new(CostModel::cm5());
        c.charge_ops(100);
        c.charge_send(100);
        c.reset();
        let r = c.report();
        assert_eq!(r.now_ns, 0.0);
        assert_eq!(r.ops, 0);
        assert_eq!(r.ops_by_cat, [0; Category::ALL.len()]);
        assert_eq!(r.words_sent, 0);
    }

    #[test]
    fn ops_are_counted_per_category_independent_of_model() {
        // Identical op streams under different cost models must produce
        // identical per-category op counts (counts measure work, not time).
        for model in [CostModel::cm5(), CostModel::zero()] {
            let mut c = SimClock::new(model);
            c.set_category(Category::LocalComp);
            c.charge_ops(7);
            c.set_category(Category::PrefixReductionSum);
            c.charge_ops(3);
            c.charge_ops(4);
            let r = c.report();
            assert_eq!(r.cat_ops(Category::LocalComp), 7);
            assert_eq!(r.cat_ops(Category::PrefixReductionSum), 7);
            assert_eq!(r.cat_ops(Category::ManyToMany), 0);
            assert_eq!(r.ops, 14);
        }
    }

    #[test]
    fn category_labels_are_unique() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Category::ALL.len());
    }

    #[test]
    fn category_indices_are_a_permutation() {
        let mut idx: Vec<_> = Category::ALL.iter().map(|c| c.index()).collect();
        idx.sort();
        assert_eq!(idx, (0..Category::ALL.len()).collect::<Vec<_>>());
    }
}
