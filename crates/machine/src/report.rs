//! Aggregation of per-processor clock reports into the quantities the
//! paper's tables report: maximum (i.e. critical-path) time per category and
//! in total, in milliseconds.

use crate::cost::{Category, ClockReport};
use crate::obs::{Event, MetricsSnapshot, WallProfile};
use crate::recovery::RecoveryStats;

/// Everything a [`crate::Machine::run`] call produced: per-processor results
/// and per-processor clock reports, both indexed by processor id.
#[derive(Debug, Clone)]
pub struct RunOutput<R> {
    /// Each processor's return value.
    pub results: Vec<R>,
    /// Each processor's final clock snapshot.
    pub clocks: Vec<ClockReport>,
    /// Per-processor category spans (empty unless the machine was built
    /// with tracing enabled).
    pub traces: Vec<Vec<crate::trace::Span>>,
    /// Charged words sent from each source (row) to each destination
    /// (column); self-messages and padding are zero.
    pub comm_matrix: Vec<Vec<u64>>,
    /// Per-processor structured event logs (empty unless the machine was
    /// built with tracing enabled — see [`crate::obs`]).
    pub events: Vec<Vec<Event>>,
    /// Per-processor metric snapshots (empty unless the machine was built
    /// with [`crate::Machine::with_metrics`]).
    pub metrics: Vec<MetricsSnapshot>,
    /// Crash-recovery accounting (`Some` iff the run came from
    /// [`crate::Machine::run_recoverable`]; `replays == 0` when no crash
    /// fired).
    pub recovery: Option<RecoveryStats>,
    /// Per-processor wall-clock profiles (strictly empty unless the machine
    /// was built with [`crate::Machine::with_wall_profiling`] — wall data
    /// never leaks into unprofiled runs).
    pub wall_profiles: Vec<WallProfile>,
}

impl<R> RunOutput<R> {
    pub(crate) fn new(results: Vec<R>, clocks: Vec<ClockReport>) -> Self {
        RunOutput {
            results,
            clocks,
            traces: Vec::new(),
            comm_matrix: Vec::new(),
            events: Vec::new(),
            metrics: Vec::new(),
            recovery: None,
            wall_profiles: Vec::new(),
        }
    }

    /// The heaviest single source→destination flow, as
    /// `(src, dst, words)` — a quick balance diagnostic.
    ///
    /// Ties are broken deterministically: among equally heavy flows, the
    /// lowest `(src, dst)` in lexicographic order wins, so the figure is
    /// stable across runs and fit for perf reports.
    pub fn heaviest_flow(&self) -> Option<(usize, usize, u64)> {
        self.comm_matrix
            .iter()
            .enumerate()
            .flat_map(|(s, row)| row.iter().enumerate().map(move |(d, &w)| (s, d, w)))
            .filter(|&(_, _, w)| w > 0)
            .fold(None, |best: Option<(usize, usize, u64)>, cand| match best {
                Some((_, _, bw)) if bw >= cand.2 => best,
                _ => Some(cand),
            })
    }

    /// Export the run's traces and structured events as Chrome
    /// `trace_event` JSON, loadable in [Perfetto](https://ui.perfetto.dev)
    /// or `chrome://tracing` (see [`crate::obs::chrome_trace_json`]).
    pub fn chrome_trace_json(&self) -> String {
        crate::obs::chrome_trace_json_with_wall(&self.traces, &self.events, &self.wall_profiles)
    }

    /// All processors' metric snapshots merged into one (counters add,
    /// gauges keep maxima, histograms merge bucket-wise). Empty when the
    /// machine ran without metrics.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for m in &self.metrics {
            merged.merge(m);
        }
        merged
    }

    /// Total structured events recorded across all processors.
    pub fn total_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Coefficient of imbalance of per-processor sent volume:
    /// `max / mean` (1.0 = perfectly balanced; 0.0 if nothing was sent).
    pub fn send_imbalance(&self) -> f64 {
        let totals: Vec<u64> = self.comm_matrix.iter().map(|r| r.iter().sum()).collect();
        let max = totals.iter().copied().max().unwrap_or(0);
        let sum: u64 = totals.iter().sum();
        if sum == 0 {
            return 0.0;
        }
        max as f64 * totals.len() as f64 / sum as f64
    }

    /// Render the traces as a text Gantt chart (see [`crate::trace`]).
    pub fn gantt(&self, cols: usize) -> String {
        crate::trace::render_gantt(&self.traces, cols)
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.clocks.len()
    }

    /// The machine's completion time: the slowest processor's clock, ms.
    pub fn max_time_ms(&self) -> f64 {
        self.clocks.iter().map(|c| c.now_ms()).fold(0.0, f64::max)
    }

    /// Maximum over processors of the time spent in `cat`, ms. This is what
    /// the paper reports per stage (each stage ends with all processors
    /// synchronised, so the stage costs as much as its slowest processor).
    pub fn max_cat_ms(&self, cat: Category) -> f64 {
        self.clocks
            .iter()
            .map(|c| c.cat_ms(cat))
            .fold(0.0, f64::max)
    }

    /// Mean over processors of the time spent in `cat`, ms.
    pub fn mean_cat_ms(&self, cat: Category) -> f64 {
        if self.clocks.is_empty() {
            return 0.0;
        }
        self.clocks.iter().map(|c| c.cat_ms(cat)).sum::<f64>() / self.clocks.len() as f64
    }

    /// Total message words sent across all processors.
    pub fn total_words_sent(&self) -> u64 {
        self.clocks.iter().map(|c| c.words_sent).sum()
    }

    /// Total elementary operations charged across all processors.
    pub fn total_ops(&self) -> u64 {
        self.clocks.iter().map(|c| c.ops).sum()
    }

    /// Per-processor elementary operations charged to one category —
    /// the measured side of the §6.4 conformance check (cost-model
    /// independent: counts, not times).
    pub fn cat_ops_per_proc(&self, cat: Category) -> Vec<u64> {
        self.clocks.iter().map(|c| c.cat_ops(cat)).collect()
    }

    /// Total message start-ups across all processors.
    pub fn total_startups(&self) -> u64 {
        self.clocks.iter().map(|c| c.startups).sum()
    }

    /// Total reliable-transport retransmissions across all processors
    /// (0 on a machine without a fault plan). A wall-clock diagnostic of
    /// how hard the transport had to work; simulated time is unaffected.
    pub fn total_retransmits(&self) -> u64 {
        self.clocks.iter().map(|c| c.retransmits).sum()
    }

    /// Total duplicate frames discarded by receivers across all processors
    /// (0 on a machine without a fault plan).
    pub fn total_dup_drops(&self) -> u64 {
        self.clocks.iter().map(|c| c.dup_drops).sum()
    }

    /// Retransmissions per charged message start-up — the chaos harness's
    /// headline retry-overhead figure. Zero when nothing was sent.
    pub fn retry_overhead(&self) -> f64 {
        let startups = self.total_startups();
        if startups == 0 {
            return 0.0;
        }
        self.total_retransmits() as f64 / startups as f64
    }

    /// Full per-category breakdown (max over processors).
    pub fn breakdown(&self) -> Breakdown {
        let mut by_cat = [0.0; Category::ALL.len()];
        for (i, cat) in Category::ALL.iter().enumerate() {
            by_cat[i] = self.max_cat_ms(*cat);
        }
        Breakdown {
            by_cat_ms: by_cat,
            total_ms: self.max_time_ms(),
        }
    }

    /// Drop the results, keeping only timing (useful when the result type is
    /// not `Clone`).
    pub fn timing_only(&self) -> RunOutput<()> {
        RunOutput {
            results: vec![(); self.results.len()],
            clocks: self.clocks.clone(),
            traces: self.traces.clone(),
            comm_matrix: self.comm_matrix.clone(),
            events: self.events.clone(),
            metrics: self.metrics.clone(),
            recovery: self.recovery.clone(),
            wall_profiles: self.wall_profiles.clone(),
        }
    }
}

/// Critical-path milliseconds per category plus the overall completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    by_cat_ms: [f64; Category::ALL.len()],
    total_ms: f64,
}

impl Breakdown {
    /// Max-over-processors time for one category, ms.
    pub fn cat_ms(&self, cat: Category) -> f64 {
        self.by_cat_ms[cat.index()]
    }

    /// Machine completion time, ms.
    pub fn total_ms(&self) -> f64 {
        self.total_ms
    }

    /// A compact single-line rendering, e.g. for experiment logs.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for cat in Category::ALL {
            let v = self.cat_ms(cat);
            if v > 0.0 {
                parts.push(format!("{}={:.3}ms", cat.label(), v));
            }
        }
        format!("total={:.3}ms [{}]", self.total_ms, parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, SimClock};

    fn report_with(cat: Category, ns: f64, now: f64) -> ClockReport {
        let mut c = SimClock::new(CostModel {
            delta_ns: 1.0,
            tau_ns: 0.0,
            mu_ns: 0.0,
            ..CostModel::zero()
        });
        c.set_category(cat);
        c.charge_ops(ns as usize);
        c.fast_forward(now);
        c.report()
    }

    #[test]
    fn max_and_mean_over_procs() {
        let out = RunOutput::new(
            vec![(), ()],
            vec![
                report_with(Category::LocalComp, 2e6, 2e6),
                report_with(Category::LocalComp, 4e6, 4e6),
            ],
        );
        assert_eq!(out.max_cat_ms(Category::LocalComp), 4.0);
        assert_eq!(out.mean_cat_ms(Category::LocalComp), 3.0);
        assert_eq!(out.max_time_ms(), 4.0);
    }

    #[test]
    fn heaviest_flow_ties_break_to_lowest_src_dst() {
        let mut out = RunOutput::new(vec![(), (), ()], Vec::new());
        // Three flows share the maximum weight 9: (0,2), (1,0), (2,1).
        out.comm_matrix = vec![vec![0, 3, 9], vec![9, 0, 1], vec![2, 9, 0]];
        assert_eq!(out.heaviest_flow(), Some((0, 2, 9)));
        // And with the (0,2) flow lightened, the next-lowest pair wins.
        out.comm_matrix[0][2] = 1;
        assert_eq!(out.heaviest_flow(), Some((1, 0, 9)));
        out.comm_matrix = vec![vec![0; 3]; 3];
        assert_eq!(out.heaviest_flow(), None);
    }

    #[test]
    fn breakdown_summary_mentions_nonzero_categories_only() {
        let out = RunOutput::new(vec![()], vec![report_with(Category::ManyToMany, 1e6, 1e6)]);
        let s = out.breakdown().summary();
        assert!(s.contains("m2m=1.000ms"), "{s}");
        assert!(!s.contains("local"), "{s}");
    }
}
