//! Allocation-free frame channel between virtual processors.
//!
//! `std::sync::mpsc` allocates a fresh node per send, which would show up
//! in the steady-state allocation gate even when every payload buffer is
//! pooled. This channel is a `Mutex<VecDeque<Frame>>` + `Condvar` pair with
//! a deterministically pre-reserved ring, so enqueue/dequeue is
//! allocation-free as long as the queue depth stays under the initial
//! capacity (the buffer-pool back-pressure in [`crate::proc::Proc`] bounds
//! depth to a few frames per sender; see DESIGN.md §11).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::message::Frame;

/// Initial queue capacity. Deep enough that no workload in this repo grows
/// it; growth past this point allocates (correctly counted) but stays
/// deterministic because queue depth is a function of program order only.
const INITIAL_CAPACITY: usize = 1024;

struct Shared {
    queue: Mutex<VecDeque<Frame>>,
    ready: Condvar,
}

/// Sending half; cheaply cloneable, one clone per peer processor.
pub(crate) struct FrameSender {
    shared: Arc<Shared>,
}

impl Clone for FrameSender {
    fn clone(&self) -> Self {
        FrameSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Receiving half; owned by exactly one processor.
pub(crate) struct FrameReceiver {
    shared: Arc<Shared>,
}

/// Why a receive returned without a frame.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RecvError {
    /// No frame arrived within the timeout.
    Timeout,
    /// The queue is currently empty (non-blocking probe).
    Empty,
}

/// A connected channel with `INITIAL_CAPACITY` slots pre-reserved.
pub(crate) fn frame_channel() -> (FrameSender, FrameReceiver) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::with_capacity(INITIAL_CAPACITY)),
        ready: Condvar::new(),
    });
    (
        FrameSender {
            shared: Arc::clone(&shared),
        },
        FrameReceiver { shared },
    )
}

impl FrameSender {
    /// Enqueue a frame. Never blocks; receivers may already be gone during
    /// teardown, in which case the frame is silently parked in the queue.
    pub(crate) fn send(&self, frame: Frame) {
        let mut q = self.shared.queue.lock().unwrap();
        q.push_back(frame);
        drop(q);
        self.shared.ready.notify_one();
    }
}

impl FrameReceiver {
    /// Dequeue the next frame, waiting up to `timeout`.
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<Frame, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(frame) = q.pop_front() {
                return Ok(frame);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let (guard, _res) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
            q = guard;
        }
    }

    /// Dequeue the next frame if one is already queued.
    pub(crate) fn try_recv(&self) -> Result<Frame, RecvError> {
        let mut q = self.shared.queue.lock().unwrap();
        q.pop_front().ok_or(RecvError::Empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MachineError;

    fn poison() -> Frame {
        Frame::Poison(MachineError::ProcPanicked {
            proc: 0,
            msg: String::new(),
        })
    }

    #[test]
    fn frames_arrive_in_order() {
        let (tx, rx) = frame_channel();
        tx.send(Frame::Ack { from: 1, seq: 10 });
        tx.send(Frame::Ack { from: 2, seq: 20 });
        for expect in [(1, 10), (2, 20)] {
            match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
                Frame::Ack { from, seq } => assert_eq!((from, seq), expect),
                _ => panic!("wrong frame"),
            }
        }
        assert!(matches!(rx.try_recv(), Err(RecvError::Empty)));
    }

    #[test]
    fn recv_times_out_when_empty() {
        let (_tx, rx) = frame_channel();
        match rx.recv_timeout(Duration::from_millis(10)) {
            Err(e) => assert_eq!(e, RecvError::Timeout),
            Ok(_) => panic!("empty channel must time out"),
        }
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = frame_channel();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(poison());
        });
        let frame = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(frame, Frame::Poison(_)));
        t.join().unwrap();
    }
}
