//! Allocation-free frame channel between virtual processors.
//!
//! `std::sync::mpsc` allocates a fresh node per send, which would show up
//! in the steady-state allocation gate even when every payload buffer is
//! pooled. This channel is a `Mutex<VecDeque<Frame>>` with a
//! deterministically pre-reserved ring, so enqueue/dequeue is
//! allocation-free as long as the queue depth stays under the initial
//! capacity (the buffer-pool back-pressure in [`crate::proc::Proc`] bounds
//! depth to a few frames per sender; see DESIGN.md §11).
//!
//! Blocking is the scheduler's job, not the channel's: receivers probe with
//! [`FrameReceiver::try_recv`] and park in [`crate::sched::Scheduler`];
//! each sender clone carries a *waker* — the destination's scheduler handle
//! — so every enqueue (data, acks, retransmissions, poison) unparks the
//! destination, whichever thread performed it.
//!
//! The ring capacity is scale-aware (see [`default_capacity`]): the
//! original fixed 1024-frame pre-reserve is kept through P=64 so small-P
//! steady-state traffic never allocates, and shrinks hyperbolically above
//! that — at P=4096 a full-size pre-reserve would cost ~P× more memory
//! than any queue ever uses. Ring bytes are charged to the
//! `mem.mailbox.ring` account at processor start (see DESIGN.md §13).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::message::Frame;
use crate::sched::Scheduler;

/// Per-processor frames pre-reserved across the whole machine, the budget
/// [`default_capacity`] divides by P (chosen so P ≤ 64 keeps the historic
/// 1024-slot ring).
const TOTAL_FRAME_BUDGET: usize = 65_536;

/// Ring capacity floor: even the largest machines keep a few slots so
/// steady phase traffic (a handful of frames between dequeues) stays
/// allocation-free.
const MIN_CAPACITY: usize = 16;

/// Historic per-processor pre-reserve, kept verbatim for P ≤ 64 so the
/// small-P allocation behaviour (and the `exec_hot` zero-alloc gate) is
/// byte-for-byte unchanged.
const MAX_CAPACITY: usize = 1024;

/// The scale-aware default ring capacity for a P-processor machine:
/// `clamp(65536 / P, 16, 1024)` frames. Growth past the ring allocates
/// (correctly counted) and stays results-deterministic — queue depth never
/// influences matching, only the allocator.
pub fn default_capacity(nprocs: usize) -> usize {
    (TOTAL_FRAME_BUDGET / nprocs.max(1)).clamp(MIN_CAPACITY, MAX_CAPACITY)
}

/// Bytes the pre-reserved frame ring pins per processor at capacity `cap`
/// — the exact quantity charged to the `mem.mailbox.ring` account and
/// asserted byte-for-byte by the memory perf group.
pub fn ring_bytes(cap: usize) -> u64 {
    (cap * std::mem::size_of::<Frame>()) as u64
}

struct Shared {
    queue: Mutex<VecDeque<Frame>>,
    /// Pre-reserved ring capacity (the charged quantity; the `VecDeque`
    /// may round up internally).
    capacity: usize,
    /// Destination scheduler handle: set once at machine start, before any
    /// sender clone escapes, so every enqueue can unpark the receiver.
    waker: Mutex<Option<(Arc<Scheduler>, usize)>>,
}

/// Sending half; cheaply cloneable, one clone per peer processor.
pub(crate) struct FrameSender {
    shared: Arc<Shared>,
}

impl Clone for FrameSender {
    fn clone(&self) -> Self {
        FrameSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Receiving half; owned by exactly one processor.
pub(crate) struct FrameReceiver {
    shared: Arc<Shared>,
}

/// A connected channel with `capacity` slots pre-reserved.
pub(crate) fn frame_channel_with_capacity(capacity: usize) -> (FrameSender, FrameReceiver) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::with_capacity(capacity)),
        capacity,
        waker: Mutex::new(None),
    });
    (
        FrameSender {
            shared: Arc::clone(&shared),
        },
        FrameReceiver { shared },
    )
}

/// A connected channel with the historic 1024-slot pre-reserve.
#[cfg(test)]
pub(crate) fn frame_channel() -> (FrameSender, FrameReceiver) {
    frame_channel_with_capacity(MAX_CAPACITY)
}

impl FrameSender {
    /// Enqueue a frame and unpark the destination. Never blocks; receivers
    /// may already be gone during teardown, in which case the frame is
    /// silently parked in the queue (the stale unpark is harmless — a
    /// finished task ignores wakes).
    pub(crate) fn send(&self, frame: Frame) {
        let mut q = self.shared.queue.lock().unwrap();
        q.push_back(frame);
        drop(q);
        let waker = self.shared.waker.lock().unwrap().clone();
        if let Some((sched, dst)) = waker {
            sched.unpark(dst);
        }
    }
}

impl FrameReceiver {
    /// Register the owning processor's scheduler handle so senders can
    /// unpark it. Called by the machine driver before carriers start.
    pub(crate) fn attach_waker(&self, sched: Arc<Scheduler>, owner: usize) {
        *self.shared.waker.lock().unwrap() = Some((sched, owner));
    }

    /// Dequeue the next frame if one is already queued.
    pub(crate) fn try_recv(&self) -> Option<Frame> {
        self.shared.queue.lock().unwrap().pop_front()
    }

    /// The pre-reserved ring capacity, in frames.
    pub(crate) fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MachineError;
    use std::time::{Duration, Instant};

    fn poison() -> Frame {
        Frame::Poison(MachineError::ProcPanicked {
            proc: 0,
            msg: String::new(),
        })
    }

    #[test]
    fn frames_arrive_in_order() {
        let (tx, rx) = frame_channel();
        tx.send(Frame::Ack { from: 1, seq: 10 });
        tx.send(Frame::Ack { from: 2, seq: 20 });
        for expect in [(1, 10), (2, 20)] {
            match rx.try_recv().unwrap() {
                Frame::Ack { from, seq } => assert_eq!((from, seq), expect),
                _ => panic!("wrong frame"),
            }
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn send_unparks_the_attached_owner() {
        // A machine of two scheduled tasks with one permit: task 1 parks
        // (releasing the permit to task 0's acquire), then a send through
        // the waker-attached channel wakes it.
        let sched = Arc::new(Scheduler::new(2, 1));
        let (tx, rx) = frame_channel();
        rx.attach_waker(Arc::clone(&sched), 1);
        let s2 = Arc::clone(&sched);
        let parker = std::thread::spawn(move || {
            s2.acquire(1);
            let out = s2.park(1, 0.0, Duration::from_secs(5));
            s2.finish(1);
            out
        });
        sched.acquire(0);
        // Give task 1 the permit by parking task 0 until it is woken back.
        let s3 = Arc::clone(&sched);
        let t0 = Instant::now();
        let waker_thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(poison());
        });
        // Task 0 parks long; the send wakes task 1, which finishes and
        // frees the permit... but nothing ever wakes task 0, so it times
        // out — proving the send woke exactly its addressee.
        let out0 = s3.park(0, 0.0, Duration::from_millis(200));
        assert_eq!(out0, crate::sched::ParkOutcome::TimedOut);
        assert_eq!(parker.join().unwrap(), crate::sched::ParkOutcome::Woken);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(matches!(rx.try_recv(), Some(Frame::Poison(_))));
        waker_thread.join().unwrap();
    }

    #[test]
    fn capacity_is_scale_aware() {
        assert_eq!(default_capacity(1), 1024);
        assert_eq!(default_capacity(8), 1024);
        assert_eq!(
            default_capacity(64),
            1024,
            "small P keeps the historic ring"
        );
        assert_eq!(default_capacity(128), 512);
        assert_eq!(default_capacity(1024), 64);
        assert_eq!(default_capacity(4096), 16);
        assert_eq!(default_capacity(1 << 20), 16, "floor holds");
        let (_tx, rx) = frame_channel_with_capacity(default_capacity(4096));
        assert_eq!(rx.capacity(), 16);
        assert_eq!(ring_bytes(16), 16 * std::mem::size_of::<Frame>() as u64);
    }
}
