//! Reliable transport over the faulty simulated network.
//!
//! When a [`crate::fault::FaultPlan`] is attached to a machine, every
//! charged point-to-point message travels as a sequence-numbered
//! [`Frame::Data`] and must be acknowledged by the receiver. The sender
//! keeps a retransmit buffer of unacknowledged messages and retries on a
//! per-message timer with exponential backoff; the receiver delivers data
//! strictly in per-sender sequence order (restoring the per-link FIFO
//! guarantee the fault-free channel gives for free) and drops duplicates.
//! Together this makes any non-crash fault schedule invisible to the
//! program: results and simulated clocks are bit-identical to the
//! fault-free run.
//!
//! Acknowledgements and poison broadcasts are *control frames*: they model
//! the CM-5's separate, reliable control network, so they are never
//! fault-injected, never charged to the cost model, and never counted as
//! application traffic. This keeps the protocol's termination argument
//! local: once a processor has seen acks for all of its own sends it can
//! stop, because every ack it owes others has already been posted.
//!
//! Simulated time stays deterministic under retries because a message's
//! arrival timestamp (including any injected delay) is drawn once, at
//! first transmission, and replayed verbatim by every retransmission; only
//! the wall-clock retry *counters* depend on OS scheduling, and they are
//! reported as diagnostics, never charged to the simulated clock.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::chan::FrameSender;
use crate::error::MachineError;
use crate::fault::{FaultPlan, Verdict};
use crate::message::{Frame, Packet};
use crate::obs::TransportEvent;

/// First retransmit timeout.
const RTO_INITIAL: Duration = Duration::from_millis(8);
/// Backoff ceiling.
const RTO_CAP: Duration = Duration::from_millis(160);
/// Transmission attempts (original + retries) before declaring the peer
/// unreachable. With the ≤20 % per-attempt drop rates the chaos harness
/// uses, the probability of 30 consecutive losses is ≈ 10⁻²¹.
const MAX_ATTEMPTS: u32 = 30;

/// One unacknowledged message, kept for retransmission. The stored packet
/// shares its payload (and its memory charge) with the in-flight copy(s)
/// by refcount: keeping it for a possible retransmit is a refcount bump,
/// not a deep copy. Its `arrival_ns` is fixed at first transmission (delay
/// included), so retries replay the same timestamp.
struct Stored {
    pkt: Packet,
    /// Transmissions so far (1 after the original send).
    attempts: u32,
    /// Wall-clock instant of the original send (retry-latency diagnostic).
    first_sent: Instant,
    /// Wall-clock deadline for the next retransmission.
    deadline: Instant,
    /// Current backoff interval.
    backoff: Duration,
}

/// A transmission of `seq` deferred until `release_at` total data
/// transmissions have happened on its link (fault-injected reordering).
struct HeldBack {
    release_at: u64,
    seq: u64,
}

/// Per-processor reliable-transport state (sender and receiver sides).
pub(crate) struct Transport {
    plan: Arc<FaultPlan>,
    /// Next sequence number per destination.
    next_seq: Vec<u64>,
    /// Next expected sequence number per source.
    expected: Vec<u64>,
    /// Out-of-order arrivals per source, keyed by sequence number.
    reorder: Vec<BTreeMap<u64, Packet>>,
    /// Unacknowledged sends, keyed by `(dst, seq)`.
    unacked: BTreeMap<(usize, u64), Stored>,
    /// Physical data transmissions per destination link (drives holdback).
    tx_count: Vec<u64>,
    /// Reorder-injected deferred transmissions per destination.
    holdback: Vec<Vec<HeldBack>>,
    /// `Proc::send` calls so far (drives the crash schedule).
    pub(crate) send_steps: u64,
    /// `Proc::recv` family calls so far (drives the recv-side crash
    /// schedule; uncharged control receives are excluded).
    pub(crate) recv_steps: u64,
    /// Retransmissions performed (diagnostic; wall-clock dependent).
    pub(crate) retransmits: u64,
    /// Duplicate frames discarded by the receiver (diagnostic).
    pub(crate) dup_drops: u64,
    /// When set, buffer [`TransportEvent`]s for the owning processor to
    /// drain and timestamp (the transport itself has no clock access).
    pub(crate) record: bool,
    events: Vec<TransportEvent>,
}

impl Transport {
    pub(crate) fn new(plan: Arc<FaultPlan>, nprocs: usize) -> Self {
        Transport {
            plan,
            next_seq: vec![0; nprocs],
            expected: vec![0; nprocs],
            reorder: (0..nprocs).map(|_| BTreeMap::new()).collect(),
            unacked: BTreeMap::new(),
            tx_count: vec![0; nprocs],
            holdback: (0..nprocs).map(|_| Vec::new()).collect(),
            send_steps: 0,
            recv_steps: 0,
            retransmits: 0,
            dup_drops: 0,
            record: false,
            events: Vec::new(),
        }
    }

    /// Drain the buffered transport observations (empty unless `record`).
    pub(crate) fn take_events(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Sender side: enqueue a packet for reliable delivery and make the
    /// first transmission attempt. The packet carries the fault-free
    /// arrival time; the plan's per-message delay is added here, once,
    /// keyed by sequence number, so retries replay the same timestamp.
    /// Returns the sequence number assigned to the message.
    pub(crate) fn send(
        &mut self,
        me: usize,
        senders: &[FrameSender],
        dst: usize,
        mut pkt: Packet,
    ) -> u64 {
        debug_assert_eq!(pkt.src, me, "a processor only sends its own packets");
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        pkt.arrival_ns += self.plan.delay_ns(me, dst, seq);
        let now = Instant::now();
        self.unacked.insert(
            (dst, seq),
            Stored {
                pkt,
                attempts: 1,
                first_sent: now,
                deadline: now + RTO_INITIAL,
                backoff: RTO_INITIAL,
            },
        );
        self.transmit(me, senders, dst, seq, 0);
        seq
    }

    /// One transmission attempt of `(dst, seq)`, subject to the fault plan.
    fn transmit(&mut self, me: usize, senders: &[FrameSender], dst: usize, seq: u64, attempt: u32) {
        let verdict = self.plan.verdict(me, dst, seq, attempt);
        if self.record && verdict != Verdict::Deliver {
            self.events
                .push(TransportEvent::Verdict(dst, seq, verdict.label()));
        }
        match verdict {
            Verdict::Drop => {}
            Verdict::Deliver => self.phys_send(senders, dst, seq),
            Verdict::Duplicate => {
                self.phys_send(senders, dst, seq);
                self.phys_send(senders, dst, seq);
            }
            Verdict::HoldBack(n) => {
                let release_at = self.tx_count[dst] + n as u64;
                self.holdback[dst].push(HeldBack { release_at, seq });
            }
        }
    }

    /// Physically put one `Data` frame of `(dst, seq)` on the wire (if it is
    /// still unacknowledged), then release any held-back transmissions that
    /// the advancing link counter makes due.
    fn phys_send(&mut self, senders: &[FrameSender], dst: usize, seq: u64) {
        let mut queue = vec![seq];
        while let Some(s) = queue.pop() {
            let Some(st) = self.unacked.get(&(dst, s)) else {
                // Acked while held back or between duplicate copies: the
                // message already got through, nothing left to send.
                continue;
            };
            let pkt = st.pkt.clone();
            // The channel outlives all sends (the driver parks receiver
            // endpoints until every processor has joined).
            senders[dst].send(Frame::Data { seq: s, pkt });
            self.tx_count[dst] += 1;
            let count = self.tx_count[dst];
            let held = &mut self.holdback[dst];
            let mut i = 0;
            while i < held.len() {
                if held[i].release_at <= count {
                    queue.push(held.swap_remove(i).seq);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Receiver side: acknowledge and order one incoming data frame.
    /// Returns the `(seq, packet)` pairs that became deliverable, in
    /// sequence order (empty for duplicates and out-of-order arrivals).
    pub(crate) fn on_data(
        &mut self,
        me: usize,
        senders: &[FrameSender],
        seq: u64,
        pkt: Packet,
    ) -> Vec<(u64, Packet)> {
        let src = pkt.src;
        // Always (re-)ack: the earlier ack may still be in flight while the
        // sender retransmits, and acks are idempotent.
        senders[src].send(Frame::Ack { from: me, seq });
        if seq < self.expected[src] {
            self.dup_drops += 1;
            if self.record {
                self.events.push(TransportEvent::DupDrop(src, seq));
            }
            return Vec::new();
        }
        if seq > self.expected[src] {
            match self.reorder[src].entry(seq) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(pkt);
                }
                std::collections::btree_map::Entry::Occupied(_) => {
                    self.dup_drops += 1;
                    if self.record {
                        self.events.push(TransportEvent::DupDrop(src, seq));
                    }
                }
            }
            return Vec::new();
        }
        let mut ready = vec![(seq, pkt)];
        self.expected[src] += 1;
        while let Some(p) = self.reorder[src].remove(&self.expected[src]) {
            ready.push((self.expected[src], p));
            self.expected[src] += 1;
        }
        ready
    }

    /// Sender side: an ack arrived; retire the message.
    pub(crate) fn on_ack(&mut self, from: usize, seq: u64) {
        self.unacked.remove(&(from, seq));
    }

    /// Retransmit every message whose retry timer has expired. Errors with
    /// [`MachineError::Unreachable`] once a message exhausts its attempts.
    pub(crate) fn pump(&mut self, me: usize, senders: &[FrameSender]) -> Result<(), MachineError> {
        let now = Instant::now();
        let due: Vec<(usize, u64)> = self
            .unacked
            .iter()
            .filter(|(_, st)| st.deadline <= now)
            .map(|(&k, _)| k)
            .collect();
        for (dst, seq) in due {
            let attempt;
            let waited_us;
            {
                let st = self
                    .unacked
                    .get_mut(&(dst, seq))
                    .expect("due key still present");
                if st.attempts >= MAX_ATTEMPTS {
                    return Err(MachineError::Unreachable {
                        proc: me,
                        dst,
                        seq,
                        attempts: st.attempts,
                    });
                }
                attempt = st.attempts;
                waited_us = st.first_sent.elapsed().as_micros() as u64;
                st.attempts += 1;
                st.backoff = (st.backoff * 2).min(RTO_CAP);
                st.deadline = now + st.backoff;
            }
            self.retransmits += 1;
            if self.record {
                self.events
                    .push(TransportEvent::Retransmit(dst, seq, attempt, waited_us));
            }
            self.transmit(me, senders, dst, seq, attempt);
        }
        Ok(())
    }

    /// True while any of this processor's sends is unacknowledged.
    pub(crate) fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// The earliest wall-clock instant at which [`Transport::pump`] has
    /// retransmission work, or `None` while everything is acked. Receive
    /// loops park exactly until this deadline instead of polling on a
    /// fixed slice — the no-hang guarantee re-expressed as a scheduler
    /// deadline (a held-back reordered frame is also `unacked`, so its
    /// release is covered too).
    pub(crate) fn next_retry_deadline(&self) -> Option<Instant> {
        self.unacked.values().map(|st| st.deadline).min()
    }

    /// The oldest unacknowledged send, as `(dst, seq, attempts)` — named in
    /// the error when a final flush gives up.
    pub(crate) fn oldest_unacked(&self) -> Option<(usize, u64, u32)> {
        self.unacked
            .iter()
            .next()
            .map(|(&(dst, seq), st)| (dst, seq, st.attempts))
    }

    /// Sequence number the next [`ReliableTransport::send`] to `dst` will
    /// assign. Replay logging must append the frame under this number
    /// *before* the send puts it on the wire: the receiver may consume the
    /// frame and crash at any point after transmission, and the recovery
    /// driver's log clone must already contain everything consumed.
    pub(crate) fn next_seq_for(&self, dst: usize) -> u64 {
        self.next_seq[dst]
    }

    /// Next expected sequence number from `src` (replay-log filtering).
    pub(crate) fn expected_from(&self, src: usize) -> u64 {
        self.expected[src]
    }

    /// Next expected sequence number per source (replay-log truncation).
    pub(crate) fn expected_all(&self) -> &[u64] {
        &self.expected
    }

    /// Capture the sequence-numbering state for an epoch checkpoint. Taken
    /// after a boundary flush, so no unacked/reordered/held-back state needs
    /// capturing: every own send is acked and every delivery consumed into
    /// the mailbox (which is checkpointed separately).
    pub(crate) fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            next_seq: self.next_seq.clone(),
            expected: self.expected.clone(),
            tx_count: self.tx_count.clone(),
            send_steps: self.send_steps,
            recv_steps: self.recv_steps,
        }
    }

    /// Reset to a checkpointed state on a respawned processor. In-flight
    /// sender state is cleared: the re-execution re-sends (with the same
    /// sequence numbers, so receivers dedup), and the replay log re-injects
    /// whatever peers had sent.
    pub(crate) fn restore(&mut self, s: &TransportSnapshot) {
        self.next_seq = s.next_seq.clone();
        self.expected = s.expected.clone();
        self.tx_count = s.tx_count.clone();
        self.send_steps = s.send_steps;
        self.recv_steps = s.recv_steps;
        self.unacked.clear();
        for r in &mut self.reorder {
            r.clear();
        }
        for h in &mut self.holdback {
            h.clear();
        }
    }
}

/// The reliable transport's checkpointable state: sequence counters only —
/// see [`Transport::snapshot`] for why the retransmit machinery needs no
/// capture at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TransportSnapshot {
    next_seq: Vec<u64>,
    expected: Vec<u64>,
    tx_count: Vec<u64>,
    send_steps: u64,
    recv_steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::{frame_channel, FrameReceiver};
    use crate::cost::Words;
    use std::any::Any;

    fn wires(n: usize) -> (Vec<FrameSender>, Vec<FrameReceiver>) {
        (0..n).map(|_| frame_channel()).unzip()
    }

    fn out_pkt(
        src: usize,
        tag: u64,
        arrival_ns: f64,
        words: Words,
        data: Arc<dyn Any + Send + Sync>,
    ) -> Packet {
        Packet {
            src,
            tag,
            arrival_ns,
            words,
            data,
            charge: None,
        }
    }

    fn data_frames(rx: &FrameReceiver) -> Vec<(u64, Packet)> {
        let mut out = Vec::new();
        while let Some(f) = rx.try_recv() {
            if let Frame::Data { seq, pkt } = f {
                out.push((seq, pkt));
            }
        }
        out
    }

    #[test]
    fn clean_link_sends_exactly_once_in_order() {
        let (txs, rxs) = wires(2);
        let mut t = Transport::new(Arc::new(FaultPlan::new(0)), 2);
        for i in 0..4i32 {
            t.send(0, &txs, 1, out_pkt(0, 7, i as f64, 1, Arc::new(vec![i])));
        }
        let got = data_frames(&rxs[1]);
        assert_eq!(
            got.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(t.has_unacked());
        for s in 0..4 {
            t.on_ack(1, s);
        }
        assert!(!t.has_unacked());
    }

    #[test]
    fn dropped_message_is_retransmitted_with_same_arrival() {
        let (txs, rxs) = wires(2);
        let mut t = Transport::new(Arc::new(plan_dropping_first()), 2);
        t.send(0, &txs, 1, out_pkt(0, 7, 42.0, 1, Arc::new(vec![9i32])));
        assert!(data_frames(&rxs[1]).is_empty(), "attempt 0 must be dropped");
        // Force the retry timer.
        for st in t.unacked.values_mut() {
            st.deadline = Instant::now() - Duration::from_millis(1);
        }
        t.pump(0, &txs).unwrap();
        let got = data_frames(&rxs[1]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert_eq!(
            got[0].1.arrival_ns, 42.0,
            "retry must replay the original arrival time"
        );
        assert_eq!(t.retransmits, 1);
    }

    #[test]
    fn retransmit_shares_the_original_buffer() {
        let (txs, rxs) = wires(2);
        let mut t = Transport::new(Arc::new(FaultPlan::new(0)), 2);
        let buf: Arc<dyn Any + Send + Sync> = Arc::new(vec![5i32, 6]);
        t.send(0, &txs, 1, out_pkt(0, 7, 1.0, 2, Arc::clone(&buf)));
        for st in t.unacked.values_mut() {
            st.deadline = Instant::now() - Duration::from_millis(1);
        }
        t.pump(0, &txs).unwrap();
        let got = data_frames(&rxs[1]);
        assert_eq!(got.len(), 2, "original plus one retransmission");
        for (_, p) in &got {
            assert!(
                Arc::ptr_eq(&p.data, &buf),
                "every copy on the wire must share the one buffer"
            );
        }
    }

    #[test]
    fn recording_buffers_verdict_retransmit_and_dup_events() {
        let (txs, _rxs) = wires(2);
        let mut t = Transport::new(Arc::new(plan_dropping_first()), 2);
        t.record = true;
        let seq = t.send(0, &txs, 1, out_pkt(0, 7, 0.0, 1, Arc::new(vec![1i32])));
        assert_eq!(seq, 0);
        for st in t.unacked.values_mut() {
            st.deadline = Instant::now() - Duration::from_millis(1);
        }
        t.pump(0, &txs).unwrap();
        // Stale duplicate on the receive side of the same transport.
        t.expected[1] = 5;
        let dup = out_pkt(1, 7, 0.0, 1, Arc::new(vec![0i32]));
        assert!(t.on_data(0, &txs, 2, dup).is_empty());
        let evs = t.take_events();
        assert!(
            matches!(evs[0], TransportEvent::Verdict(1, 0, "drop")),
            "first event should be the dropped attempt's verdict"
        );
        assert!(evs
            .iter()
            .any(|e| matches!(e, TransportEvent::Retransmit(1, 0, 1, _))));
        assert!(evs
            .iter()
            .any(|e| matches!(e, TransportEvent::DupDrop(1, 2))));
        assert!(t.take_events().is_empty(), "drain must consume the buffer");
    }

    /// A plan whose link 0→1 drops attempt 0 of seq 0 and delivers attempt 1.
    fn plan_dropping_first() -> FaultPlan {
        let mut seed = 0u64;
        loop {
            let p = FaultPlan::new(seed).with_drop(0.6);
            if p.verdict(0, 1, 0, 0) == Verdict::Drop && p.verdict(0, 1, 0, 1) == Verdict::Deliver {
                return p;
            }
            seed += 1;
        }
    }

    #[test]
    fn receiver_orders_and_deduplicates() {
        let (txs, _rxs) = wires(2);
        let mut t = Transport::new(Arc::new(FaultPlan::new(0)), 2);
        let pkt = |v: i32| out_pkt(1, 7, 0.0, 1, Arc::new(vec![v]));
        // seq 1 arrives early: buffered.
        assert!(t.on_data(0, &txs, 1, pkt(1)).is_empty());
        // duplicate of seq 1: dropped.
        assert!(t.on_data(0, &txs, 1, pkt(1)).is_empty());
        assert_eq!(t.dup_drops, 1);
        // seq 0 arrives: both become deliverable, in order.
        let ready = t.on_data(0, &txs, 0, pkt(0));
        assert_eq!(
            ready.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 1],
            "delivered packets must carry their sequence numbers"
        );
        let vals: Vec<i32> = ready
            .into_iter()
            .map(|(_, p)| p.data.downcast::<Vec<i32>>().unwrap()[0])
            .collect();
        assert_eq!(vals, vec![0, 1]);
        // stale duplicate of seq 0: dropped.
        assert!(t.on_data(0, &txs, 0, pkt(0)).is_empty());
        assert_eq!(t.dup_drops, 2);
    }

    #[test]
    fn unreachable_after_max_attempts() {
        let plan = FaultPlan::new(1).with_link(
            0,
            1,
            crate::fault::LinkFaults {
                drop_p: 1.0,
                ..Default::default()
            },
        );
        let (txs, _rxs) = wires(2);
        let mut t = Transport::new(Arc::new(plan), 2);
        t.send(0, &txs, 1, out_pkt(0, 7, 0.0, 1, Arc::new(vec![1i32])));
        let err = loop {
            for st in t.unacked.values_mut() {
                st.deadline = Instant::now() - Duration::from_millis(1);
            }
            if let Err(e) = t.pump(0, &txs) {
                break e;
            }
        };
        match err {
            MachineError::Unreachable {
                proc: 0,
                dst: 1,
                seq: 0,
                attempts,
            } => {
                assert_eq!(attempts, MAX_ATTEMPTS);
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    proptest::proptest! {
        /// Epoch checkpointing captures exactly the transport's sequence
        /// counters: over an arbitrary send/receive history, a fresh
        /// transport restored from the snapshot must re-snapshot
        /// identically and carry no in-flight state (the boundary flush
        /// guarantees the original had none either), and restoring *over*
        /// in-flight state must clear it.
        #[test]
        fn transport_snapshot_restore_roundtrip(
            sends in proptest::collection::vec((0usize..3, 1usize..5), 0..30),
            recvs in proptest::collection::vec((0usize..3, 1u64..4), 0..20),
            steps in (0u64..50, 0u64..50),
        ) {
            let (txs, _rxs) = wires(3);
            let mut t = Transport::new(Arc::new(FaultPlan::new(0)), 3);
            for &(dst, words) in &sends {
                t.send(0, &txs, dst, out_pkt(0, 7, 1e6, words, Arc::new(vec![1i32; words])));
            }
            for &(src, n) in &recvs {
                for _ in 0..n {
                    let seq = t.expected[src];
                    let pkt = out_pkt(src, 7, 0.0, 1, Arc::new(Vec::<i32>::new()));
                    t.on_data(1, &txs, seq, pkt);
                }
            }
            t.send_steps = steps.0;
            t.recv_steps = steps.1;
            let snap = t.snapshot();

            let mut fresh = Transport::new(Arc::new(FaultPlan::new(0)), 3);
            fresh.restore(&snap);
            proptest::prop_assert_eq!(&fresh.snapshot(), &snap);
            proptest::prop_assert!(fresh.unacked.is_empty());
            proptest::prop_assert!(fresh.reorder.iter().all(|r| r.is_empty()));
            proptest::prop_assert!(fresh.holdback.iter().all(|h| h.is_empty()));

            // Restoring over live in-flight state clears it too: the
            // respawned re-execution re-sends under the same sequence
            // numbers and the replay log re-supplies incoming frames.
            t.restore(&snap);
            proptest::prop_assert!(t.unacked.is_empty());
            proptest::prop_assert_eq!(&t.snapshot(), &snap);
        }
    }
}
