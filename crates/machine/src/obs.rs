//! Observability: structured event tracing and a metrics registry.
//!
//! The category spans of [`crate::trace`] answer *where did simulated time
//! go*; this module answers *what happened*. When a machine is built with
//! tracing enabled, every processor records a per-processor, simulated-time
//! ordered log of structured [`Event`]s: stage span begin/end markers (named
//! after the paper's algorithm stages), message sends and receives with
//! source/destination/volume/sequence, and the reliable transport's
//! retransmit / duplicate-drop / fault-verdict annotations. The log exports
//! as Chrome `trace_event` JSON ([`chrome_trace_json`]), loadable in
//! Perfetto or `chrome://tracing`, alongside the existing text Gantt.
//!
//! Independently, a machine built with metrics enabled gives each processor
//! a [`Registry`] of named counters, gauges, and log₂-bucketed histograms
//! (message sizes, retry latencies, mailbox depths, per-stage durations).
//! Updates are lock-free (relaxed atomics; registration of a new name takes
//! a short mutex, once). Per-processor snapshots are aggregated into
//! [`crate::RunOutput`] and rendered as a human summary or JSON.
//!
//! Both facilities are disabled by default and cost one branch per send /
//! receive / stage transition when off.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::Span;

/// Which observability facilities a machine enables. Both default to off;
/// see [`crate::Machine::with_tracing`] and [`crate::Machine::with_metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record structured [`Event`]s (alongside the clock's category spans).
    pub events: bool,
    /// Maintain per-processor metric registries.
    pub metrics: bool,
    /// Record wall-clock spans with a per-processor [`WallProfiler`]; see
    /// [`crate::Machine::with_wall_profiling`].
    pub wall: bool,
}

impl ObsConfig {
    /// True iff no *simulated* observability is enabled (the zero-overhead
    /// fast path for event/metric recording). Wall profiling is deliberately
    /// excluded: it has its own gate and never feeds the simulated streams.
    pub fn is_off(&self) -> bool {
        !self.events && !self.metrics
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One structured trace event, stamped with the recording processor's
/// simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time on the recording processor, nanoseconds.
    pub ts_ns: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Named memory accounts every word-carrying structure is charged to (see
/// DESIGN.md §13). Accounts are few and fixed so hot-path charging indexes
/// an array instead of hashing a string; the string names only appear at
/// export time (gauge names, Perfetto track names, perf reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemAccount {
    /// Packets delivered to a mailbox and not yet consumed (receiver-owned).
    Mailbox = 0,
    /// In-flight `Arc` payloads, charged once at the owning sender from
    /// send until arrival (events) / until the last refcount drops (gauge).
    Payload = 1,
    /// Reusable pooled send buffers; each slot charges its high-water
    /// capacity once and is never released (the buffer is reused forever).
    Pool = 2,
    /// Crash-recovery replay-log frames retained on behalf of a
    /// destination, charged by the sender to the *destination's* account.
    ReplayLog = 3,
    /// Plan-time index/segment buffers (charged by `hpf-core`).
    Plan = 4,
    /// User arrays registered through the `distarray` `TrackArray` hook.
    User = 5,
    /// The frame channel's pre-reserved ring, charged once per processor at
    /// start (constant for a machine shape, never released; see
    /// [`crate::chan::default_capacity`]'s scale-aware sizing). Excluded
    /// from the predicted-vs-measured peak gate, which covers workload-
    /// driven memory; the ring is asserted byte-exactly instead.
    MailboxRing = 6,
}

impl MemAccount {
    /// Every account, in gauge/track emission order.
    pub const ALL: [MemAccount; 7] = [
        MemAccount::Mailbox,
        MemAccount::Payload,
        MemAccount::Pool,
        MemAccount::ReplayLog,
        MemAccount::Plan,
        MemAccount::User,
        MemAccount::MailboxRing,
    ];

    /// Short account name, used in gauge and counter-track names.
    pub fn name(self) -> &'static str {
        match self {
            MemAccount::Mailbox => "mailbox",
            MemAccount::Payload => "payload",
            MemAccount::Pool => "pool",
            MemAccount::ReplayLog => "replay_log",
            MemAccount::Plan => "plan",
            MemAccount::User => "user",
            MemAccount::MailboxRing => "mailbox.ring",
        }
    }

    /// Registry gauge name: `last` is the current bytes, `max` the peak.
    pub fn gauge_name(self) -> &'static str {
        match self {
            MemAccount::Mailbox => "mem.mailbox.cur",
            MemAccount::Payload => "mem.payload.cur",
            MemAccount::Pool => "mem.pool.cur",
            MemAccount::ReplayLog => "mem.replay_log.cur",
            MemAccount::Plan => "mem.plan.cur",
            MemAccount::User => "mem.user.cur",
            MemAccount::MailboxRing => "mem.mailbox.ring",
        }
    }
}

/// The event vocabulary. Message volume is in 4-byte words (the unit the
/// cost model charges `μ` per); `seq` is the reliable transport's per-link
/// sequence number and is `None` on a fault-free machine, whose fast path
/// does not sequence frames.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A named algorithm stage began (see [`crate::Proc::with_stage`]).
    SpanBegin {
        /// Stage name, e.g. `"rank.intermediate"`.
        name: &'static str,
    },
    /// The matching stage ended.
    SpanEnd {
        /// Stage name.
        name: &'static str,
    },
    /// A point annotation (e.g. a collective phase marker).
    Marker {
        /// Marker name.
        name: &'static str,
    },
    /// A charged point-to-point send completed on this processor.
    Send {
        /// Destination processor.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Charged volume in words.
        words: usize,
        /// Transport sequence number (`None` on the fault-free fast path).
        seq: Option<u64>,
        /// Simulated arrival time at the receiver (injected delay included).
        arrival_ns: f64,
    },
    /// A message was delivered to this processor's mailbox.
    Recv {
        /// Source processor.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Charged volume in words.
        words: usize,
        /// Transport sequence number (`None` on the fault-free fast path).
        seq: Option<u64>,
    },
    /// A program-level receive consumed a message from this processor's
    /// mailbox. `Recv` records *delivery* (stamped with the packet's arrival
    /// time); `Consume` records the moment the algorithm actually took the
    /// message, which is what the critical-path analyzer needs to decide
    /// whether the receiver was blocked on the wire or the message sat
    /// waiting in the mailbox.
    Consume {
        /// Source processor.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Charged volume in words.
        words: usize,
        /// Simulated time this receiver spent blocked waiting for the
        /// message to arrive (0 when it was already in the mailbox).
        waited_ns: f64,
        /// The consumed packet's arrival time. Copied bit-for-bit from the
        /// packet, so it equals the matching `Send::arrival_ns` exactly —
        /// the analyzer joins send→consume edges on this value.
        arrival_ns: f64,
    },
    /// An uncharged clock synchronisation at a phase boundary jumped this
    /// processor's clock forward to the slowest participant's time
    /// (see `Proc::clock_sync_max`). Recorded only when the clock actually
    /// moved; the stamped `ts_ns` is the post-jump (barrier) time.
    Barrier {
        /// The processor whose clock defined the barrier time (ties broken
        /// towards the lowest id, deterministically).
        owner: usize,
        /// How far this clock jumped, nanoseconds.
        waited_ns: f64,
    },
    /// The reliable transport retransmitted an unacknowledged message.
    Retransmit {
        /// Destination of the retried message.
        dst: usize,
        /// Its sequence number.
        seq: u64,
        /// Which retry this was (1 = first retransmission).
        attempt: u32,
    },
    /// The receiver discarded a duplicate frame.
    DupDrop {
        /// The duplicate's source.
        src: usize,
        /// Its sequence number.
        seq: u64,
    },
    /// The fault injector decided the fate of one transmission attempt
    /// (only non-`Deliver` verdicts are recorded).
    FaultVerdict {
        /// Destination of the transmission.
        dst: usize,
        /// Its sequence number.
        seq: u64,
        /// The verdict: `"drop"`, `"duplicate"`, or `"hold-back"`.
        verdict: &'static str,
    },
    /// A memory-accounting charge (`delta_bytes > 0`) or release (`< 0`)
    /// against one account, stamped with the recording processor's
    /// simulated clock. `owner` is the processor whose memory changed —
    /// almost always the recorder, except for the replay log, which the
    /// *sender* charges to the destination's account. Never rendered as an
    /// instant; the exporter folds these into per-processor counter tracks,
    /// and the analysis layer reconstructs per-processor peaks from them.
    MemSample {
        /// Which account the bytes belong to.
        account: MemAccount,
        /// Processor whose memory changed.
        owner: usize,
        /// Signed size change in bytes.
        delta_bytes: i64,
    },
}

/// Transport-side observations buffered inside [`crate::reliable`] (which
/// has no clock access) and drained by the owning processor, which stamps
/// them with its current simulated time. Retransmit timing is wall-clock
/// driven, so these annotations carry the only wall-clock-derived quantity
/// in the event log (`latency_us`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TransportEvent {
    /// A retry fired: `(dst, seq, attempt, wall-clock µs since first send)`.
    Retransmit(usize, u64, u32, u64),
    /// A duplicate frame from `src` with sequence `seq` was discarded.
    DupDrop(usize, u64),
    /// The injector returned a non-`Deliver` verdict for `(dst, seq)`.
    Verdict(usize, u64, &'static str),
}

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Increments are single relaxed
/// atomic adds — lock-free and wait-free.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value — only for checkpoint restore, where the
    /// counter must return to exactly its boundary value even if the
    /// respawned processor already re-incremented it.
    pub(crate) fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A gauge: remembers the last value set and the maximum ever set.
#[derive(Debug, Default)]
pub struct Gauge {
    last: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Record the instantaneous value `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.last.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// `(last, max)` as currently recorded.
    pub fn get(&self) -> (u64, u64) {
        (
            self.last.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Add `n` to the current value (memory-account charging). One relaxed
    /// fetch-add plus a max update — lock-free like `set`.
    #[inline]
    pub(crate) fn add(&self, n: u64) {
        let now = self.last.fetch_add(n, Ordering::Relaxed) + n;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtract `n` from the current value, saturating at zero (a release
    /// may race a checkpoint restore that already zeroed the gauge).
    #[inline]
    pub(crate) fn sub(&self, n: u64) {
        let _ = self
            .last
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Overwrite both fields — only for checkpoint restore (a `set` could
    /// not lower `max` back to its boundary value).
    pub(crate) fn restore(&self, last: u64, max: u64) {
        self.last.store(last, Ordering::Relaxed);
        self.max.store(max, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0; bucket `b ≥ 1` holds
/// values in `[2^(b-1), 2^b)`; the last bucket additionally absorbs
/// everything at or above `2^63`.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-scaled histogram of `u64` samples (message words, latencies in
/// µs, queue depths, stage durations). Observation is one relaxed atomic
/// add into the sample's bucket plus count/sum upkeep — lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a sample: 0 for 0, else `1 + floor(log₂ v)`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Reload a snapshot into this histogram — the inverse of
    /// [`Histogram::snapshot`], used when a crashed processor's registry is
    /// rebuilt from its epoch checkpoint. A true overwrite: buckets absent
    /// from the snapshot are zeroed, so samples observed by a respawned
    /// processor's pre-restore re-execution don't survive.
    pub(crate) fn restore(&self, s: &HistSnapshot) {
        self.count.store(s.count, Ordering::Relaxed);
        self.sum.store(s.sum, Ordering::Relaxed);
        self.max.store(s.max, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        for &(b, n) in &s.buckets {
            self.buckets[b as usize].store(n, Ordering::Relaxed);
        }
    }

    /// Freeze into a snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect(),
        }
    }
}

/// Immutable histogram snapshot: only non-empty buckets are kept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// `(bucket index, sample count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another snapshot into this one, bucket-wise.
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for &(b, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (b, n)),
            }
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket boundaries:
    /// returns the upper bound of the bucket containing the `q`-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return if b == 0 { 0 } else { 1u64 << b.min(63) };
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named-metric registry. Looking up (or creating) a metric by name takes
/// a short mutex; the returned handle updates lock-free, so hot paths hold
/// handles and never touch the maps. One registry per processor — snapshots
/// are merged across processors by [`MetricsSnapshot::merge`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Reload a snapshot into this registry — the inverse of
    /// [`Registry::snapshot`], used when a crashed processor is respawned
    /// from its epoch checkpoint so its metrics resume from the boundary
    /// values instead of zero. A true overwrite: every already-registered
    /// metric is zeroed first, because a respawned processor re-executes
    /// (and re-counts) work preceding its restore point.
    pub(crate) fn restore(&self, s: &MetricsSnapshot) {
        for c in self.counters.lock().expect("registry poisoned").values() {
            c.set(0);
        }
        for g in self.gauges.lock().expect("registry poisoned").values() {
            g.restore(0, 0);
        }
        for h in self.histograms.lock().expect("registry poisoned").values() {
            h.restore(&HistSnapshot::default());
        }
        for (k, v) in &s.counters {
            self.counter(k).set(*v);
        }
        for (k, v) in &s.gauges {
            self.gauge(k).restore(v.last, v.max);
        }
        for (k, h) in &s.histograms {
            self.histogram(k).restore(h);
        }
    }

    /// Freeze every registered metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| {
                    let (last, max) = v.get();
                    (k.clone(), GaugeValue { last, max })
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A gauge's frozen state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeValue {
    /// Last value set.
    pub last: u64,
    /// Maximum value ever set.
    pub max: u64,
}

/// All of one processor's metrics, frozen at the end of a run (or the merge
/// of several processors' snapshots).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeValue>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Merge `other` into `self`: counters add, gauges keep the overall
    /// maximum (and the maximum of lasts), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_default();
            e.last = e.last.max(v.last);
            e.max = e.max.max(v.max);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Human-readable multi-line summary, stable order.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} = {} (max {})", v.last, v.max);
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{k}: n={} mean={:.1} p50~{} p99~{} max={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            );
        }
        out
    }

    /// Render as a JSON object (stable key order; no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_map(&mut out, &self.gauges, |out, v| {
            let _ = write!(out, "{{\"last\":{},\"max\":{}}}", v.last, v.max);
        });
        out.push_str("},\"histograms\":{");
        push_map(&mut out, &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.max
            );
            for (i, (b, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{n}]");
            }
            out.push_str("]}");
        });
        out.push_str("}}");
        out
    }
}

fn push_map<V>(out: &mut String, map: &BTreeMap<String, V>, mut val: impl FnMut(&mut String, &V)) {
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        val(out, v);
    }
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

/// Escape a string into a JSON string body (quotes not included).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microseconds (the trace_event unit) from nanoseconds.
#[inline]
fn us(ns: f64) -> f64 {
    ns / 1000.0
}

/// Flow-event id tying a sequenced send to its receive: unique per
/// `(src, dst, seq)` for the grids this simulator runs (`P < 2^16`).
#[inline]
fn flow_id(src: usize, dst: usize, seq: u64) -> u64 {
    ((src as u64) << 44) | ((dst as u64) << 28) | (seq & ((1 << 28) - 1))
}

/// Timestamp tie-break key making the export byte-stable run to run.
///
/// Concurrently-arriving messages are logged in whatever order the OS
/// scheduled the receiving thread, so the raw log order varies even though
/// every timestamp is simulated. Message events get a content key; span and
/// marker events all rank equal (and first), so the stable sort preserves
/// their program order and `B`/`E` pairing survives zero-length stages.
fn tie_break(kind: &EventKind) -> (u8, u64, u64, u64, &'static str) {
    match kind {
        EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } | EventKind::Marker { .. } => {
            (0, 0, 0, 0, "")
        }
        EventKind::Send {
            dst,
            tag,
            seq,
            words,
            ..
        } => (
            1,
            *dst as u64,
            *tag,
            seq.map_or(0, |s| s + 1) << 32 | *words as u64,
            "",
        ),
        EventKind::Recv {
            src,
            tag,
            seq,
            words,
        } => (
            2,
            *src as u64,
            *tag,
            seq.map_or(0, |s| s + 1) << 32 | *words as u64,
            "",
        ),
        EventKind::Retransmit { dst, seq, attempt } => (3, *dst as u64, *seq, *attempt as u64, ""),
        EventKind::DupDrop { src, seq } => (4, *src as u64, *seq, 0, ""),
        EventKind::FaultVerdict { dst, seq, verdict } => (5, *dst as u64, *seq, 0, verdict),
        EventKind::Consume {
            src, tag, words, ..
        } => (6, *src as u64, *tag, *words as u64, ""),
        EventKind::Barrier { owner, .. } => (7, *owner as u64, 0, 0, ""),
        EventKind::MemSample {
            account,
            owner,
            delta_bytes,
        } => (8, *owner as u64, *account as u64, *delta_bytes as u64, ""),
    }
}

/// Append one trace-event JSON object, comma-separating after the first.
#[inline]
fn emit(out: &mut String, first: &mut bool, body: &str) {
    if !std::mem::take(first) {
        out.push(',');
    }
    out.push_str(body);
}

/// `(timestamp, rank, delta)` samples feeding one counter track.
type CounterDeltas = Vec<(f64, u8, i64)>;

/// Emit one counter track (`"C"` phase events) for processor `pid`: sort
/// the `(timestamp, rank, delta)` samples — increments rank before
/// decrements at equal timestamps so the running value never dips
/// spuriously — integrate, clamp at zero, and write one sample per delta.
/// The single formatting site shared by the queue tracks (mailbox depth,
/// in-flight sends) and the per-account memory tracks.
fn counter_track(
    out: &mut String,
    first: &mut bool,
    pid: usize,
    name: &str,
    field: &str,
    cat: &str,
    deltas: &mut [(f64, u8, i64)],
) {
    if deltas.is_empty() {
        return;
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut level = 0i64;
    let mut buf = String::new();
    for &(ts, _, d) in deltas.iter() {
        level = (level + d).max(0);
        buf.clear();
        let _ = write!(
            buf,
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":2,\"ts\":{:.3},\
             \"name\":\"{name}\",\"cat\":\"{cat}\",\"args\":{{\
             \"{field}\":{level}}}}}",
            us(ts)
        );
        emit(out, first, &buf);
    }
}

/// Export category spans and structured events as Chrome `trace_event`
/// JSON, loadable in Perfetto or `chrome://tracing`.
///
/// Each simulated processor becomes one trace *process* with three threads:
/// `categories` (the clock-category spans of [`crate::trace`], as complete
/// `X` slices), `stages` (algorithm-stage `B`/`E` slices and markers), and
/// `messages` (send / receive / retransmit / duplicate-drop / fault-verdict
/// instants). Sequenced sends and their receives are additionally linked
/// with flow events (`s`/`f`), which Perfetto draws as arrows. Memory
/// samples become per-processor `mem.<account>` counter tracks, emitted
/// after all per-processor sections in deterministic (processor, account)
/// order.
///
/// Timestamps are *simulated* microseconds; `traces` and `events` are
/// indexed by processor id (either may be empty).
pub fn chrome_trace_json(traces: &[Vec<Span>], events: &[Vec<Event>]) -> String {
    let nprocs = traces.len().max(events.len());
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut buf = String::new();
    for pid in 0..nprocs {
        buf.clear();
        let _ = write!(
            buf,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"proc {pid}\"}}}}"
        );
        for (tid, tname) in [(0, "categories"), (1, "stages"), (2, "messages")] {
            let _ = write!(
                buf,
                ",{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{tname}\"}}}}"
            );
        }
        emit(&mut out, &mut first, &buf);
    }
    for (pid, spans) in traces.iter().enumerate() {
        for s in spans {
            buf.clear();
            let _ = write!(
                buf,
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"{}\",\"cat\":\"category\"}}",
                us(s.start_ns),
                us(s.end_ns - s.start_ns),
                s.category.label()
            );
            emit(&mut out, &mut first, &buf);
        }
    }
    for (pid, evs) in events.iter().enumerate() {
        let mut ordered: Vec<&Event> = evs.iter().collect();
        ordered.sort_by(|a, b| {
            a.ts_ns
                .total_cmp(&b.ts_ns)
                .then_with(|| tie_break(&a.kind).cmp(&tie_break(&b.kind)))
        });
        for e in ordered {
            buf.clear();
            let ts = us(e.ts_ns);
            match &e.kind {
                // Memory samples are not instants: they surface only as the
                // per-account counter tracks emitted after this loop.
                EventKind::MemSample { .. } => continue,
                EventKind::SpanBegin { name } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":1,\"ts\":{ts:.3},\
                         \"name\":\"{name}\",\"cat\":\"stage\"}}"
                    );
                }
                EventKind::SpanEnd { name } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":1,\"ts\":{ts:.3},\
                         \"name\":\"{name}\",\"cat\":\"stage\"}}"
                    );
                }
                EventKind::Marker { name } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":1,\"ts\":{ts:.3},\
                         \"name\":\"{name}\",\"cat\":\"marker\",\"s\":\"t\"}}"
                    );
                }
                EventKind::Send {
                    dst,
                    tag,
                    words,
                    seq,
                    arrival_ns,
                } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":2,\"ts\":{ts:.3},\
                         \"name\":\"send\",\"cat\":\"msg\",\"s\":\"t\",\"args\":{{\
                         \"dst\":{dst},\"tag\":{tag},\"words\":{words},\
                         \"arrival_us\":{:.3}{}}}}}",
                        us(*arrival_ns),
                        match seq {
                            Some(s) => format!(",\"seq\":{s}"),
                            None => String::new(),
                        }
                    );
                    if let Some(s) = seq {
                        let _ = write!(
                            buf,
                            ",{{\"ph\":\"s\",\"pid\":{pid},\"tid\":2,\"ts\":{ts:.3},\
                             \"name\":\"msg\",\"cat\":\"flow\",\"id\":{}}}",
                            flow_id(pid, *dst, *s)
                        );
                    }
                }
                EventKind::Recv {
                    src,
                    tag,
                    words,
                    seq,
                } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":2,\"ts\":{ts:.3},\
                         \"name\":\"recv\",\"cat\":\"msg\",\"s\":\"t\",\"args\":{{\
                         \"src\":{src},\"tag\":{tag},\"words\":{words}{}}}}}",
                        match seq {
                            Some(s) => format!(",\"seq\":{s}"),
                            None => String::new(),
                        }
                    );
                    if let Some(s) = seq {
                        let _ = write!(
                            buf,
                            ",{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{pid},\"tid\":2,\
                             \"ts\":{ts:.3},\"name\":\"msg\",\"cat\":\"flow\",\"id\":{}}}",
                            flow_id(*src, pid, *s)
                        );
                    }
                }
                EventKind::Consume {
                    src,
                    tag,
                    words,
                    waited_ns,
                    ..
                } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":2,\"ts\":{ts:.3},\
                         \"name\":\"consume\",\"cat\":\"msg\",\"s\":\"t\",\"args\":{{\
                         \"src\":{src},\"tag\":{tag},\"words\":{words},\
                         \"waited_us\":{:.3}}}}}",
                        us(*waited_ns)
                    );
                }
                EventKind::Barrier { owner, waited_ns } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":1,\"ts\":{ts:.3},\
                         \"name\":\"barrier\",\"cat\":\"sync\",\"s\":\"t\",\"args\":{{\
                         \"owner\":{owner},\"waited_us\":{:.3}}}}}",
                        us(*waited_ns)
                    );
                }
                EventKind::Retransmit { dst, seq, attempt } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":2,\"ts\":{ts:.3},\
                         \"name\":\"retransmit\",\"cat\":\"fault\",\"s\":\"t\",\"args\":{{\
                         \"dst\":{dst},\"seq\":{seq},\"attempt\":{attempt}}}}}"
                    );
                }
                EventKind::DupDrop { src, seq } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":2,\"ts\":{ts:.3},\
                         \"name\":\"dup-drop\",\"cat\":\"fault\",\"s\":\"t\",\"args\":{{\
                         \"src\":{src},\"seq\":{seq}}}}}"
                    );
                }
                EventKind::FaultVerdict { dst, seq, verdict } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":2,\"ts\":{ts:.3},\
                         \"name\":\"fault-verdict\",\"cat\":\"fault\",\"s\":\"t\",\"args\":{{\
                         \"dst\":{dst},\"seq\":{seq},\"verdict\":\"{verdict}\"}}}}"
                    );
                }
            }
            emit(&mut out, &mut first, &buf);
        }

        // Counter tracks ("C" phase events): mailbox depth (deliveries not
        // yet consumed) and in-flight sends (charged sends whose packet has
        // not yet arrived — only visibly non-zero under injected delays).
        // Perfetto renders these as per-process area charts next to the
        // span threads, which is how queue pressure becomes visible. The
        // running value is clamped at zero (a muted consumer may skip its
        // Consume records).
        let mut mailbox: Vec<(f64, u8, i64)> = Vec::new();
        let mut in_flight: Vec<(f64, u8, i64)> = Vec::new();
        for e in evs {
            match &e.kind {
                EventKind::Recv { .. } => mailbox.push((e.ts_ns, 0, 1)),
                EventKind::Consume { .. } => mailbox.push((e.ts_ns, 1, -1)),
                EventKind::Send { arrival_ns, .. } => {
                    in_flight.push((e.ts_ns, 0, 1));
                    if arrival_ns.is_finite() {
                        in_flight.push((*arrival_ns, 1, -1));
                    }
                }
                _ => {}
            }
        }
        counter_track(
            &mut out,
            &mut first,
            pid,
            "mailbox_depth",
            "depth",
            "queue",
            &mut mailbox,
        );
        counter_track(
            &mut out,
            &mut first,
            pid,
            "in_flight_sends",
            "msgs",
            "queue",
            &mut in_flight,
        );
    }

    // Memory counter tracks. A sample may be recorded by a processor other
    // than its owner (a sender charges the destination's replay-log
    // account), so samples are aggregated across every processor's log and
    // emitted per (owner, account) after all per-processor sections — the
    // BTreeMap makes the order deterministic, so the JSON is byte-stable.
    let mut mem: BTreeMap<(usize, MemAccount), CounterDeltas> = BTreeMap::new();
    for evs in events {
        for e in evs {
            if let EventKind::MemSample {
                account,
                owner,
                delta_bytes,
            } = &e.kind
            {
                mem.entry((*owner, *account)).or_default().push((
                    e.ts_ns,
                    u8::from(*delta_bytes < 0),
                    *delta_bytes,
                ));
            }
        }
    }
    for ((pid, account), deltas) in &mut mem {
        let name = format!("mem.{}", account.name());
        counter_track(&mut out, &mut first, *pid, &name, "bytes", "mem", deltas);
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Wall-clock profiling
// ---------------------------------------------------------------------------

/// One closed wall-clock span recorded by a [`WallProfiler`].
///
/// Timestamps are monotonic-clock nanoseconds relative to the profiler's
/// origin (its construction instant), on the recording processor's own OS
/// thread. They share no timebase with the simulated clock and must never
/// be compared against it — see DESIGN.md §14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSpan {
    /// Stage name; reuses the simulated stage vocabulary where the span
    /// brackets the same region (e.g. `"pack.execute"`).
    pub name: &'static str,
    /// Index of the enclosing span in the profile's span list, `None` for
    /// a root span. Spans are stored in begin order (pre-order), so a
    /// parent always precedes its children.
    pub parent: Option<u32>,
    /// Nesting depth (0 = root).
    pub depth: u32,
    /// Begin time, nanoseconds since the profiler's origin.
    pub start_ns: u64,
    /// Wall duration, nanoseconds.
    pub dur_ns: u64,
    /// Payload bytes moved inside this span (attributed with
    /// [`WallProfiler::add_bytes`]; excludes bytes attributed to child
    /// spans).
    pub bytes: u64,
}

impl WallSpan {
    /// Effective copy bandwidth over the span, GB/s (bytes per wall
    /// nanosecond). Zero for an instantaneous or byte-free span.
    pub fn gbps(&self) -> f64 {
        if self.dur_ns == 0 {
            0.0
        } else {
            self.bytes as f64 / self.dur_ns as f64
        }
    }
}

/// A per-thread wall-clock span recorder — the wall-side twin of the
/// simulated stage tracer. Each [`crate::Proc`] optionally owns one (see
/// [`crate::Machine::with_wall_profiling`]); when absent, every profiling
/// hook is a single `Option` branch, so disabled runs pay ~zero overhead
/// and the steady-state execute loop stays allocation-free.
///
/// Spans nest: `begin`/`end` must pair like brackets on one thread. The
/// span vector is pre-reserved so recording inside a measured hot loop
/// does not allocate until the reservation is exhausted.
#[derive(Debug)]
pub struct WallProfiler {
    origin: std::time::Instant,
    spans: Vec<WallSpan>,
    /// Indices into `spans` of the currently open spans, innermost last.
    open: Vec<u32>,
    /// `end` calls with no matching `begin` (a bug the nesting check
    /// surfaces).
    unmatched_ends: u32,
}

impl Default for WallProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl WallProfiler {
    /// Pre-reserved span capacity: enough for the bench hot loops (tens of
    /// spans per execute) without reallocation mid-measurement.
    const RESERVE: usize = 4096;

    /// A fresh profiler; its origin is *now*.
    pub fn new() -> WallProfiler {
        WallProfiler {
            origin: std::time::Instant::now(),
            spans: Vec::with_capacity(Self::RESERVE),
            open: Vec::with_capacity(32),
            unmatched_ends: 0,
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Open a nested span named `name`.
    #[inline]
    pub fn begin(&mut self, name: &'static str) {
        let idx = self.spans.len() as u32;
        let parent = self.open.last().copied();
        let depth = self.open.len() as u32;
        let start_ns = self.now_ns();
        self.spans.push(WallSpan {
            name,
            parent,
            depth,
            start_ns,
            dur_ns: 0,
            bytes: 0,
        });
        self.open.push(idx);
    }

    /// Close the innermost open span.
    #[inline]
    pub fn end(&mut self) {
        let now = self.now_ns();
        match self.open.pop() {
            Some(idx) => {
                let span = &mut self.spans[idx as usize];
                span.dur_ns = now.saturating_sub(span.start_ns);
            }
            None => self.unmatched_ends += 1,
        }
    }

    /// Attribute `bytes` of payload movement to the innermost open span
    /// (dropped on the floor when no span is open).
    #[inline]
    pub fn add_bytes(&mut self, bytes: u64) {
        if let Some(&idx) = self.open.last() {
            self.spans[idx as usize].bytes += bytes;
        }
    }

    /// Finish profiling: force-close any spans still open (counting them,
    /// so [`WallProfile::well_formed`] can flag the leak) and freeze the
    /// span list.
    pub fn finish(mut self) -> WallProfile {
        let forced = self.open.len() as u32;
        while !self.open.is_empty() {
            self.end();
        }
        WallProfile {
            spans: self.spans,
            forced_closes: forced,
            unmatched_ends: self.unmatched_ends,
        }
    }
}

/// One processor's finished wall profile: the closed spans in begin
/// (pre-)order plus bookkeeping for the nesting check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WallProfile {
    /// Closed spans, in begin order (a parent precedes its children).
    pub spans: Vec<WallSpan>,
    /// Spans still open when the profiler was finished (0 in a well-formed
    /// profile — every `begin` had an `end`).
    pub forced_closes: u32,
    /// `end` calls that had no matching `begin`.
    pub unmatched_ends: u32,
}

impl WallProfile {
    /// Total root-span wall time, nanoseconds (children are contained in
    /// their parents, so summing the roots never double-counts).
    pub fn total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Span `i`'s *self* time: its duration minus its direct children's
    /// durations (saturating — timer granularity can make children sum
    /// slightly past the parent).
    pub fn self_ns(&self, i: usize) -> u64 {
        let children: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(i as u32))
            .map(|s| s.dur_ns)
            .sum();
        self.spans[i].dur_ns.saturating_sub(children)
    }

    /// The dotted stack of span `i`, root-first, e.g.
    /// `"pack.execute;a2a.planned"`.
    pub fn stack_of(&self, i: usize) -> String {
        let mut names = Vec::new();
        let mut cur = Some(i as u32);
        while let Some(c) = cur {
            let s = &self.spans[c as usize];
            names.push(s.name);
            cur = s.parent;
        }
        names.reverse();
        names.join(";")
    }

    /// Nesting check: every `begin` had an `end`, every `end` a `begin`,
    /// and every child span lies within its parent's interval. Returns a
    /// diagnostic for the first violation.
    pub fn well_formed(&self) -> Result<(), String> {
        if self.forced_closes > 0 {
            return Err(format!(
                "{} spans were never closed (begin without end)",
                self.forced_closes
            ));
        }
        if self.unmatched_ends > 0 {
            return Err(format!(
                "{} end calls had no open span",
                self.unmatched_ends
            ));
        }
        for (i, s) in self.spans.iter().enumerate() {
            let Some(p) = s.parent else {
                if s.depth != 0 {
                    return Err(format!(
                        "root span {} ({}) has depth {}",
                        i, s.name, s.depth
                    ));
                }
                continue;
            };
            let parent = &self.spans[p as usize];
            if s.depth != parent.depth + 1 {
                return Err(format!(
                    "span {} ({}) depth {} under parent depth {}",
                    i, s.name, s.depth, parent.depth
                ));
            }
            if s.start_ns < parent.start_ns
                || s.start_ns + s.dur_ns > parent.start_ns + parent.dur_ns
            {
                return Err(format!(
                    "span {} ({}) [{}, {}] outside parent {} [{}, {}]",
                    i,
                    s.name,
                    s.start_ns,
                    s.start_ns + s.dur_ns,
                    parent.name,
                    parent.start_ns,
                    parent.start_ns + parent.dur_ns
                ));
            }
        }
        Ok(())
    }
}

/// Render per-processor wall profiles as folded stacks — the
/// flamegraph.pl / inferno input format: one `stack;frames count` line per
/// distinct stack, where the count is the stack's *self* wall time in
/// nanoseconds. Stacks are rooted at `procN` and aggregated over all
/// occurrences; lines are sorted, so the output is deterministic given the
/// profiles.
pub fn folded_stacks(profiles: &[WallProfile]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (pid, profile) in profiles.iter().enumerate() {
        for i in 0..profile.spans.len() {
            let self_ns = profile.self_ns(i);
            if self_ns == 0 {
                continue;
            }
            let stack = format!("proc{pid};{}", profile.stack_of(i));
            *agg.entry(stack).or_insert(0) += self_ns;
        }
    }
    let mut out = String::new();
    for (stack, ns) in agg {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// [`chrome_trace_json`] plus a dedicated per-processor wall-clock track:
/// each profile's spans are emitted as complete `X` slices on `tid` 3
/// (thread name `wall`), with the span's moved bytes and effective GB/s as
/// args. Wall timestamps are monotonic nanoseconds since the profiler's
/// origin — a different timebase from the simulated tracks, which is why
/// they live on their own thread and are never mixed into the simulated
/// rows.
pub fn chrome_trace_json_with_wall(
    traces: &[Vec<Span>],
    events: &[Vec<Event>],
    wall: &[WallProfile],
) -> String {
    let mut out = chrome_trace_json(traces, events);
    debug_assert!(out.ends_with("]}"));
    out.truncate(out.len() - 2);
    let mut extra = String::new();
    for (pid, profile) in wall.iter().enumerate() {
        if profile.spans.is_empty() {
            continue;
        }
        let _ = write!(
            extra,
            ",{{\"ph\":\"M\",\"pid\":{pid},\"tid\":3,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"wall\"}}}}"
        );
        for s in &profile.spans {
            let _ = write!(
                extra,
                ",{{\"ph\":\"X\",\"pid\":{pid},\"tid\":3,\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"{}\",\"cat\":\"wall\",\"args\":{{\"bytes\":{},\
                 \"gbps\":{:.3}}}}}",
                s.start_ns as f64 / 1000.0,
                s.dur_ns as f64 / 1000.0,
                s.name,
                s.bytes,
                s.gbps()
            );
        }
    }
    if !extra.is_empty() {
        // Skip the leading comma if the simulated export had no events at
        // all (a zero-processor run).
        if out.ends_with('[') {
            out.push_str(&extra[1..]);
        } else {
            out.push_str(&extra);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Category;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_snapshot_and_merge() {
        let h = Histogram::default();
        for v in [0, 1, 1, 5, 1000] {
            h.observe(v);
        }
        let mut a = h.snapshot();
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 1007);
        assert_eq!(a.max, 1000);
        assert_eq!(a.buckets, vec![(0, 1), (1, 2), (3, 1), (10, 1)]);

        let h2 = Histogram::default();
        h2.observe(6);
        h2.observe(2000);
        a.merge(&h2.snapshot());
        assert_eq!(a.count, 7);
        assert_eq!(a.max, 2000);
        assert_eq!(a.buckets, vec![(0, 1), (1, 2), (3, 2), (10, 1), (11, 1)]);
        // Median of {0,1,1,5,6,1000,2000} is 5 → bucket 3 upper bound 8.
        assert_eq!(a.quantile(0.5), 8);
        assert_eq!(a.quantile(0.0), 0);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.add(2);
        assert_eq!(r.snapshot().counter("x"), 3);
        let g = r.gauge("depth");
        g.set(5);
        g.set(2);
        let snap = r.snapshot();
        assert_eq!(snap.gauges["depth"], GaugeValue { last: 2, max: 5 });
    }

    #[test]
    fn snapshot_merge_adds_counters_and_maxes_gauges() {
        let a = Registry::new();
        a.counter("n").add(2);
        a.gauge("g").set(7);
        let b = Registry::new();
        b.counter("n").add(3);
        b.counter("only_b").inc();
        b.gauge("g").set(4);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("n"), 5);
        assert_eq!(m.counter("only_b"), 1);
        assert_eq!(m.gauges["g"].max, 7);
    }

    #[test]
    fn metrics_json_is_well_formed() {
        let r = Registry::new();
        r.counter("msg.sent").add(4);
        r.histogram("msg.words").observe(16);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"msg.sent\":4"), "{json}");
        assert!(json.contains("\"buckets\":[[5,1]]"), "{json}");
        // Balanced braces/brackets (cheap structural check without a parser).
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn chrome_trace_contains_spans_and_events() {
        let traces = vec![vec![Span {
            category: Category::LocalComp,
            start_ns: 0.0,
            end_ns: 1000.0,
        }]];
        let events = vec![vec![
            Event {
                ts_ns: 0.0,
                kind: EventKind::SpanBegin { name: "rank" },
            },
            Event {
                ts_ns: 500.0,
                kind: EventKind::Send {
                    dst: 1,
                    tag: 7,
                    words: 3,
                    seq: Some(0),
                    arrival_ns: 500.0,
                },
            },
            Event {
                ts_ns: 900.0,
                kind: EventKind::SpanEnd { name: "rank" },
            },
        ]];
        let json = chrome_trace_json(&traces, &events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"send\""), "{json}");
        assert!(json.contains("\"ph\":\"s\""), "flow start missing: {json}");
        assert!(json.contains("\"proc 0\""), "{json}");
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn counter_tracks_follow_mailbox_occupancy() {
        let events = vec![vec![
            Event {
                ts_ns: 100.0,
                kind: EventKind::Recv {
                    src: 1,
                    tag: 7,
                    words: 3,
                    seq: None,
                },
            },
            Event {
                ts_ns: 150.0,
                kind: EventKind::Recv {
                    src: 1,
                    tag: 8,
                    words: 3,
                    seq: None,
                },
            },
            Event {
                ts_ns: 200.0,
                kind: EventKind::Consume {
                    src: 1,
                    tag: 7,
                    words: 3,
                    waited_ns: 0.0,
                    arrival_ns: 100.0,
                },
            },
        ]];
        let json = chrome_trace_json(&[], &events);
        // Depth rises to 2 after both deliveries, drops to 1 at the consume.
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"name\":\"mailbox_depth\""), "{json}");
        assert!(json.contains("\"depth\":2"), "{json}");
        assert!(json.contains("\"depth\":1"), "{json}");
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn flow_ids_are_distinct_per_link_and_seq() {
        let mut ids = std::collections::HashSet::new();
        for src in 0..4 {
            for dst in 0..4 {
                for seq in 0..8 {
                    ids.insert(flow_id(src, dst, seq));
                }
            }
        }
        assert_eq!(ids.len(), 4 * 4 * 8);
    }

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn wall_profiler_records_nested_spans() {
        let mut w = WallProfiler::new();
        w.begin("outer");
        w.add_bytes(100);
        w.begin("inner");
        w.add_bytes(40);
        w.end();
        w.end();
        let p = w.finish();
        p.well_formed().expect("balanced begins/ends");
        assert_eq!(p.spans.len(), 2);
        let outer = &p.spans[0];
        let inner = &p.spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.bytes, 100);
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(0));
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.bytes, 40);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(p.total_ns(), outer.dur_ns);
        assert_eq!(p.stack_of(1), "outer;inner");
        assert_eq!(p.self_ns(0), outer.dur_ns - inner.dur_ns);
    }

    #[test]
    fn wall_profile_flags_unbalanced_spans() {
        let mut w = WallProfiler::new();
        w.begin("leaked");
        let p = w.finish();
        assert!(p.well_formed().is_err(), "unclosed span must be flagged");

        let mut w = WallProfiler::new();
        w.end();
        let p = w.finish();
        assert!(p.well_formed().is_err(), "stray end must be flagged");
    }

    #[test]
    fn folded_stacks_aggregate_self_time() {
        let profile = WallProfile {
            spans: vec![
                WallSpan {
                    name: "execute",
                    parent: None,
                    depth: 0,
                    start_ns: 0,
                    dur_ns: 100,
                    bytes: 0,
                },
                WallSpan {
                    name: "gather",
                    parent: Some(0),
                    depth: 1,
                    start_ns: 10,
                    dur_ns: 60,
                    bytes: 0,
                },
            ],
            forced_closes: 0,
            unmatched_ends: 0,
        };
        let folded = folded_stacks(&[profile]);
        assert_eq!(folded, "proc0;execute 40\nproc0;execute;gather 60\n");
    }

    #[test]
    fn wall_track_extends_trace_without_touching_simulated_rows() {
        let traces: Vec<Vec<Span>> = vec![Vec::new()];
        let events: Vec<Vec<Event>> = vec![Vec::new()];
        let base = chrome_trace_json(&traces, &events);
        // No profiles, or only empty profiles: export is byte-identical.
        assert_eq!(
            chrome_trace_json_with_wall(&traces, &events, &[]),
            base,
            "empty wall must not change the export"
        );
        assert_eq!(
            chrome_trace_json_with_wall(&traces, &events, &[WallProfile::default()]),
            base
        );

        let profile = WallProfile {
            spans: vec![WallSpan {
                name: "pack.execute",
                parent: None,
                depth: 0,
                start_ns: 1000,
                dur_ns: 2000,
                bytes: 4000,
            }],
            forced_closes: 0,
            unmatched_ends: 0,
        };
        let json = chrome_trace_json_with_wall(&traces, &events, &[profile]);
        assert!(json.starts_with(&base[..base.len() - 2]), "{json}");
        assert!(json.contains("\"tid\":3"), "{json}");
        assert!(json.contains("\"name\":\"wall\""), "{json}");
        assert!(json.contains("\"bytes\":4000"), "{json}");
        assert!(json.contains("\"gbps\":2.000"), "{json}");
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }
}
