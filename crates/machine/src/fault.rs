//! Seeded, deterministic fault injection for the simulated network.
//!
//! The two-level model of the paper assumes a perfect crossbar: every
//! `τ + μ·m` send arrives exactly once, in order, and no processor dies.
//! A [`FaultPlan`] deliberately breaks those assumptions — per-link message
//! **drop**, **duplication**, **delay**, and **reordering**, plus an
//! optional **crash** of one processor at a chosen send step — so that the
//! reliable transport (see [`crate::reliable`]) and the graceful-failure
//! machinery can be exercised under any schedule.
//!
//! Every decision is a pure hash of `(seed, src, dst, seq, attempt)`: two
//! runs with the same plan see the *same* faults on the same messages no
//! matter how the OS schedules the processor threads. Retry timing is the
//! only wall-clock-dependent quantity, and it affects only retry counters,
//! never results or simulated clocks: the simulated arrival time of a
//! message (including its injected delay) is drawn once, at first
//! transmission, keyed by sequence number alone.

/// Per-link fault probabilities. All probabilities are clamped to `[0, 1]`
/// at decision time; a default-constructed `LinkFaults` injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability that one transmission attempt is silently dropped.
    pub drop_p: f64,
    /// Probability that one transmission attempt is delivered twice.
    pub dup_p: f64,
    /// Probability that a message's simulated arrival is delayed.
    pub delay_p: f64,
    /// Maximum injected delay, in simulated nanoseconds (drawn uniformly).
    pub max_delay_ns: f64,
    /// Probability that a transmission is held back behind later traffic
    /// on the same link (physical reordering; sequence numbers restore
    /// delivery order at the receiver).
    pub reorder_p: f64,
}

impl LinkFaults {
    /// True iff this configuration can never inject anything.
    pub fn is_benign(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.delay_p <= 0.0 && self.reorder_p <= 0.0
    }
}

/// What the injector decided for one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Transmit normally.
    Deliver,
    /// Do not transmit; the sender's retry timer will fire later.
    Drop,
    /// Transmit two copies.
    Duplicate,
    /// Hold this transmission until after the next `n` data transmissions
    /// on the same link (then release).
    HoldBack(u8),
}

impl Verdict {
    /// Short name used in trace annotations (`Deliver` is never annotated).
    pub(crate) fn label(&self) -> &'static str {
        match self {
            Verdict::Deliver => "deliver",
            Verdict::Drop => "drop",
            Verdict::Duplicate => "duplicate",
            Verdict::HoldBack(_) => "hold-back",
        }
    }
}

/// A seeded, deterministic schedule of network faults and processor crashes.
///
/// Attach to a machine with [`crate::Machine::with_faults`]; the machine
/// then routes all charged point-to-point traffic over the reliable
/// transport, which recovers from every non-crash fault the plan injects.
///
/// # Example
/// ```
/// use hpf_machine::fault::FaultPlan;
/// let plan = FaultPlan::new(42).with_drop(0.2).with_duplicate(0.1).with_reorder(0.15);
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    everywhere: LinkFaults,
    /// Per-link overrides, looked up before `everywhere`.
    overrides: Vec<((usize, usize), LinkFaults)>,
    /// Crash `proc` when its (1-based) send counter reaches `step`.
    crash: Option<(usize, u64)>,
    /// Crash `proc` when its (1-based) receive counter reaches `step`.
    crash_at_recv: Option<(usize, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed. Compose with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            everywhere: LinkFaults::default(),
            overrides: Vec::new(),
            crash: None,
            crash_at_recv: None,
        }
    }

    /// The plan's seed, for reproduction lines in harness output.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each transmission attempt with probability `p`, on every link.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.everywhere.drop_p = p;
        self
    }

    /// Duplicate each transmission with probability `p`, on every link.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.everywhere.dup_p = p;
        self
    }

    /// Delay each message's simulated arrival with probability `p`, by a
    /// uniform draw from `[0, max_delay_ns]`, on every link.
    pub fn with_delay(mut self, p: f64, max_delay_ns: f64) -> Self {
        self.everywhere.delay_p = p;
        self.everywhere.max_delay_ns = max_delay_ns;
        self
    }

    /// Physically reorder transmissions with probability `p`, on every link.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.everywhere.reorder_p = p;
        self
    }

    /// Override the fault configuration of the single link `src → dst`.
    pub fn with_link(mut self, src: usize, dst: usize, faults: LinkFaults) -> Self {
        self.overrides.retain(|((s, d), _)| (*s, *d) != (src, dst));
        self.overrides.push(((src, dst), faults));
        self
    }

    /// Crash processor `proc` when its send counter reaches `step`
    /// (1-based: `step = 1` crashes on the first send).
    pub fn with_crash(mut self, proc: usize, step: u64) -> Self {
        self.crash = Some((proc, step));
        self
    }

    /// Crash processor `proc` when its receive counter reaches `step`
    /// (1-based: `step = 1` crashes on the first posted receive). Covers
    /// processors that only consume — a send-step crash can never fire on
    /// them.
    pub fn with_crash_at_recv(mut self, proc: usize, step: u64) -> Self {
        self.crash_at_recv = Some((proc, step));
        self
    }

    /// The configured crash, if any, as `(proc, send_step)`.
    pub fn crash(&self) -> Option<(usize, u64)> {
        self.crash
    }

    /// The configured receive-side crash, if any, as `(proc, recv_step)`.
    pub fn crash_at_recv(&self) -> Option<(usize, u64)> {
        self.crash_at_recv
    }

    /// Faults configured for the link `src → dst`.
    pub fn link(&self, src: usize, dst: usize) -> LinkFaults {
        self.overrides
            .iter()
            .find(|((s, d), _)| (*s, *d) == (src, dst))
            .map(|(_, f)| *f)
            .unwrap_or(self.everywhere)
    }

    /// True iff no link can ever inject a fault and no crash is scheduled.
    pub fn is_benign(&self) -> bool {
        self.crash.is_none()
            && self.crash_at_recv.is_none()
            && self.everywhere.is_benign()
            && self.overrides.iter().all(|(_, f)| f.is_benign())
    }

    /// Decide the fate of transmission `attempt` (0 = original send) of
    /// message `seq` on link `src → dst`. Pure function of the arguments.
    pub(crate) fn verdict(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> Verdict {
        let f = self.link(src, dst);
        if self.draw(src, dst, seq, attempt, Salt::Drop) < f.drop_p {
            return Verdict::Drop;
        }
        if self.draw(src, dst, seq, attempt, Salt::Duplicate) < f.dup_p {
            return Verdict::Duplicate;
        }
        if self.draw(src, dst, seq, attempt, Salt::Reorder) < f.reorder_p {
            // Hold behind 1–3 subsequent transmissions.
            let n = 1 + (self.hash(src, dst, seq, attempt, Salt::HoldDepth) % 3) as u8;
            return Verdict::HoldBack(n);
        }
        Verdict::Deliver
    }

    /// The injected simulated delay for message `seq` on `src → dst`, in
    /// nanoseconds. Keyed by sequence number only (not attempt), so the
    /// message's simulated arrival time is identical no matter which
    /// transmission attempt finally gets through.
    pub(crate) fn delay_ns(&self, src: usize, dst: usize, seq: u64) -> f64 {
        let f = self.link(src, dst);
        if f.delay_p <= 0.0 || f.max_delay_ns <= 0.0 {
            return 0.0;
        }
        if self.draw(src, dst, seq, 0, Salt::DelayGate) < f.delay_p {
            self.draw(src, dst, seq, 0, Salt::DelayAmount) * f.max_delay_ns
        } else {
            0.0
        }
    }

    /// Uniform `[0, 1)` draw keyed by the full event coordinates.
    fn draw(&self, src: usize, dst: usize, seq: u64, attempt: u32, salt: Salt) -> f64 {
        // 53 mantissa bits of the hash.
        (self.hash(src, dst, seq, attempt, salt) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn hash(&self, src: usize, dst: usize, seq: u64, attempt: u32, salt: Salt) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64) << 32 | dst as u64)
            .wrapping_add(seq.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add((attempt as u64) << 8 | salt as u64);
        // SplitMix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

#[derive(Debug, Clone, Copy)]
enum Salt {
    Drop = 1,
    Duplicate = 2,
    Reorder = 3,
    HoldDepth = 4,
    DelayGate = 5,
    DelayAmount = 6,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1).with_drop(0.5);
        let b = FaultPlan::new(1).with_drop(0.5);
        let c = FaultPlan::new(2).with_drop(0.5);
        let va: Vec<_> = (0..64).map(|s| a.verdict(0, 1, s, 0)).collect();
        let vb: Vec<_> = (0..64).map(|s| b.verdict(0, 1, s, 0)).collect();
        let vc: Vec<_> = (0..64).map(|s| c.verdict(0, 1, s, 0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc, "different seeds should give different schedules");
    }

    #[test]
    fn probabilities_roughly_respected() {
        let plan = FaultPlan::new(7).with_drop(0.2);
        let drops = (0..10_000)
            .filter(|&s| plan.verdict(0, 1, s, 0) == Verdict::Drop)
            .count();
        assert!(
            (1500..2500).contains(&drops),
            "drop rate {drops}/10000 far from 20%"
        );
    }

    #[test]
    fn attempts_draw_independently() {
        let plan = FaultPlan::new(3).with_drop(0.5);
        // Some message dropped at attempt 0 must eventually deliver.
        let seq = (0..1000)
            .find(|&s| plan.verdict(0, 1, s, 0) == Verdict::Drop)
            .expect("a drop exists at 50%");
        let delivered = (1..100).any(|a| plan.verdict(0, 1, seq, a) != Verdict::Drop);
        assert!(delivered);
    }

    #[test]
    fn delay_keyed_by_seq_not_attempt() {
        let plan = FaultPlan::new(9).with_delay(1.0, 1000.0);
        for seq in 0..32 {
            let d = plan.delay_ns(0, 1, seq);
            assert!((0.0..=1000.0).contains(&d));
        }
        assert!((0..32).any(|s| plan.delay_ns(0, 1, s) > 0.0));
    }

    #[test]
    fn per_link_overrides_win() {
        let quiet = LinkFaults::default();
        let plan = FaultPlan::new(5).with_drop(1.0).with_link(2, 3, quiet);
        assert_eq!(plan.verdict(0, 1, 0, 0), Verdict::Drop);
        assert_eq!(plan.verdict(2, 3, 0, 0), Verdict::Deliver);
        assert!(!plan.is_benign());
        assert!(FaultPlan::new(0).is_benign());
        assert!(!FaultPlan::new(0).with_crash(1, 10).is_benign());
        assert!(!FaultPlan::new(0).with_crash_at_recv(1, 3).is_benign());
        assert_eq!(
            FaultPlan::new(0).with_crash_at_recv(1, 3).crash_at_recv(),
            Some((1, 3))
        );
    }
}
