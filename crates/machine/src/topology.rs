//! Logical processor grids.
//!
//! The paper distributes a rank-`d` array over logical processors
//! `Pn(P_{d-1}, …, P_1, P_0)`. Following the paper's row-major convention,
//! dimension 0 is the *fastest varying*: processor `(p_{d-1}, …, p_0)` has
//! linear id `Σ p_i · Π_{k<i} P_k`. Internally we store per-dimension extents
//! indexed by the paper's dimension number, so `dims[0]` is the innermost
//! dimension.

use std::fmt;

/// A `d`-dimensional logical processor grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcGrid {
    /// Extent of each grid dimension, `dims[i] = P_i` (dimension 0 innermost).
    dims: Vec<usize>,
    /// `strides[i] = Π_{k<i} P_k`: weight of coordinate `i` in the linear id.
    strides: Vec<usize>,
    nprocs: usize,
}

impl ProcGrid {
    /// Build a grid from per-dimension extents (`dims[0]` = dimension 0,
    /// the innermost/fastest-varying dimension).
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty(),
            "processor grid needs at least one dimension"
        );
        assert!(
            dims.iter().all(|&p| p > 0),
            "all grid extents must be positive"
        );
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc = 1usize;
        for &p in dims {
            strides.push(acc);
            acc = acc.checked_mul(p).expect("processor count overflow");
        }
        ProcGrid {
            dims: dims.to_vec(),
            strides,
            nprocs: acc,
        }
    }

    /// A one-dimensional grid of `p` processors.
    pub fn line(p: usize) -> Self {
        Self::new(&[p])
    }

    /// Total processor count `P = Π P_i`.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Grid rank (number of dimensions).
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Extent `P_i` of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// All extents, innermost first.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Coordinates of processor `id`, innermost dimension first.
    pub fn coords(&self, id: usize) -> Vec<usize> {
        debug_assert!(id < self.nprocs);
        self.dims
            .iter()
            .zip(&self.strides)
            .map(|(&p, &s)| (id / s) % p)
            .collect()
    }

    /// Coordinate of processor `id` along dimension `i` only.
    #[inline]
    pub fn coord(&self, id: usize, i: usize) -> usize {
        (id / self.strides[i]) % self.dims[i]
    }

    /// Linear id of the processor at `coords` (innermost first).
    pub fn id(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.dims.len());
        coords
            .iter()
            .zip(self.dims.iter().zip(&self.strides))
            .map(|(&c, (&p, &s))| {
                debug_assert!(c < p, "coordinate {c} out of range for extent {p}");
                c * s
            })
            .sum()
    }

    /// The global ids of all processors that share every coordinate of
    /// processor `id` except along dimension `dim`, in increasing coordinate
    /// order. This is the communicator for dimension-`dim` collectives; the
    /// position of `id` within the returned list equals `coord(id, dim)`.
    pub fn axis_members(&self, id: usize, dim: usize) -> Vec<usize> {
        let my = self.coord(id, dim);
        let base = id - my * self.strides[dim];
        (0..self.dims[dim])
            .map(|c| base + c * self.strides[dim])
            .collect()
    }
}

impl fmt::Display for ProcGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper order: outermost first, e.g. "4x4".
        let parts: Vec<String> = self.dims.iter().rev().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_grid_roundtrip() {
        let g = ProcGrid::line(7);
        assert_eq!(g.nprocs(), 7);
        for id in 0..7 {
            assert_eq!(g.coords(id), vec![id]);
            assert_eq!(g.id(&[id]), id);
        }
    }

    #[test]
    fn two_d_grid_id_formula_is_row_major_with_dim0_innermost() {
        // dims = [P0=4, P1=3]: id = p0 + 4*p1
        let g = ProcGrid::new(&[4, 3]);
        assert_eq!(g.nprocs(), 12);
        assert_eq!(g.id(&[2, 1]), 6);
        assert_eq!(g.coords(6), vec![2, 1]);
        assert_eq!(g.coord(6, 0), 2);
        assert_eq!(g.coord(6, 1), 1);
    }

    #[test]
    fn coords_id_roundtrip_3d() {
        let g = ProcGrid::new(&[2, 3, 4]);
        for id in 0..g.nprocs() {
            assert_eq!(g.id(&g.coords(id)), id);
        }
    }

    #[test]
    fn axis_members_vary_one_coordinate() {
        let g = ProcGrid::new(&[4, 3]);
        let id = g.id(&[2, 1]);
        // Along dim 0: same p1=1, p0 = 0..4
        assert_eq!(g.axis_members(id, 0), vec![4, 5, 6, 7]);
        // Along dim 1: same p0=2, p1 = 0..3
        assert_eq!(g.axis_members(id, 1), vec![2, 6, 10]);
        // My position in the axis list equals my coordinate.
        assert_eq!(g.axis_members(id, 0)[g.coord(id, 0)], id);
        assert_eq!(g.axis_members(id, 1)[g.coord(id, 1)], id);
    }

    #[test]
    fn display_is_outermost_first() {
        assert_eq!(ProcGrid::new(&[4, 16]).to_string(), "16x4");
        assert_eq!(ProcGrid::line(16).to_string(), "16");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        ProcGrid::new(&[4, 0]);
    }
}
