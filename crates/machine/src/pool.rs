//! Typed, per-processor buffer pool for allocation-free plan execution.
//!
//! Re-executing a cached communication plan sends the same message shapes
//! to the same destinations every iteration. Instead of allocating fresh
//! per-destination buffers each time, the executor checks buffers out of a
//! pool keyed by `(plan key, destination, payload type)`, fills them in
//! place, and ships them as [`Arc`]-shared packets; the *receiver* returns
//! each buffer to the sender's slot after decoding. From the second
//! execution onward the whole compose+redistribute loop touches no
//! allocator (verified by the counting allocator in the bench harness).
//!
//! Ownership protocol (see DESIGN.md §11): every slot is a tiny state
//! machine —
//!
//! ```text
//!   Free ──checkout (sender)──▶ Empty ──stash (sender)──▶ Staged
//!     ▲                                                      │
//!     └───────── put_back (receiver, after decode) ◀─────────┘
//! ```
//!
//! The sender may only check out a `Free` slot; a slot stays `Staged` until
//! the receiver has decoded it, so a sender re-executing faster than its
//! receiver consumes blocks (wall-clock only — simulated time is untouched)
//! instead of clobbering in-flight data. Each `(key, dst, type)` entry holds
//! two slots used alternately, so a sender can compose iteration `n+1`
//! while the receiver still holds iteration `n`.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::message::Payload;
use crate::sched::Scheduler;

/// A pool-managed payload: resettable to an empty-but-capacitated state so
/// the next fill reuses the allocation.
pub trait Reusable: Payload + Default {
    /// Clear contents, keeping capacity.
    fn reset(&mut self);
}

impl<T: crate::message::Wire> Reusable for Vec<T> {
    fn reset(&mut self) {
        self.clear();
    }
}

/// Where a slot's buffer currently lives.
enum SlotState<B> {
    /// Parked in the pool, ready for checkout.
    Free(B),
    /// Filled by the sender, awaiting (or in) transit; the receiver will
    /// take it.
    Staged(B),
    /// Checked out: the sender is filling it, or the receiver is decoding
    /// a taken buffer.
    Empty,
}

/// One shareable buffer slot. The `Arc<PoolSlot<B>>` itself is the packet
/// payload: the receiver downcasts it and returns the buffer straight into
/// the sender's slot.
pub struct PoolSlot<B> {
    state: Mutex<SlotState<B>>,
    /// High-water of charged bytes ever staged in this slot. Memory
    /// accounting charges a slot's *growth* once (the buffer is reused, so
    /// its footprint is its largest staging, never the sum).
    charged: AtomicU64,
    /// The slot owner's scheduler handle, registered only while the owner
    /// is parked in back-pressure ([`crate::proc::Proc::pool_checkout`]):
    /// the receiver's `put_back` — which runs on a different carrier —
    /// unparks the owner instead of leaving it to spin or poll.
    waker: Mutex<Option<(Arc<Scheduler>, usize)>>,
}

impl<B: Reusable> PoolSlot<B> {
    fn new() -> PoolSlot<B> {
        PoolSlot {
            state: Mutex::new(SlotState::Free(B::default())),
            charged: AtomicU64::new(0),
            waker: Mutex::new(None),
        }
    }

    /// Register (or clear) the owner's park waker for this slot.
    pub(crate) fn set_waker(&self, waker: Option<(Arc<Scheduler>, usize)>) {
        *self.waker.lock().unwrap() = waker;
    }

    /// Raise the slot's charged high-water to `bytes`, returning the growth
    /// over the previous high-water (0 when the slot was already this big —
    /// steady-state sends through a warm slot charge nothing).
    pub(crate) fn note_charged(&self, bytes: u64) -> u64 {
        let prev = self.charged.fetch_max(bytes, Ordering::Relaxed);
        bytes.saturating_sub(prev)
    }

    /// Take the buffer if the slot is `Free`; `None` while the previous
    /// send through this slot is still unconsumed.
    pub fn try_checkout(&self) -> Option<B> {
        let mut st = self.state.lock().unwrap();
        match std::mem::replace(&mut *st, SlotState::Empty) {
            SlotState::Free(b) => Some(b),
            other => {
                *st = other;
                None
            }
        }
    }

    /// Park a filled buffer for the receiver (sender side, after filling).
    pub fn stash(&self, buf: B) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(matches!(*st, SlotState::Empty), "stash into non-empty slot");
        *st = SlotState::Staged(buf);
    }

    /// Take the staged buffer for decoding (receiver side). Panics if the
    /// slot is not staged — FIFO delivery guarantees the sender stashed
    /// before the packet became visible.
    pub fn take_staged(&self) -> B {
        let mut st = self.state.lock().unwrap();
        match std::mem::replace(&mut *st, SlotState::Empty) {
            SlotState::Staged(b) => b,
            _ => panic!("pool slot taken before it was staged"),
        }
    }

    /// Words the staged buffer will occupy on the wire (sender side,
    /// between `stash` and the actual send).
    pub fn staged_words(&self) -> crate::cost::Words {
        let st = self.state.lock().unwrap();
        match &*st {
            SlotState::Staged(b) => b.wire_words(),
            _ => panic!("staged_words on a slot that is not staged"),
        }
    }

    /// Return a decoded buffer to the pool (receiver side), unparking the
    /// owner if it is waiting on this slot's back-pressure.
    pub fn put_back(&self, mut buf: B) {
        buf.reset();
        let mut st = self.state.lock().unwrap();
        debug_assert!(
            matches!(*st, SlotState::Empty),
            "put_back into occupied slot"
        );
        *st = SlotState::Free(buf);
        drop(st);
        let waker = self.waker.lock().unwrap().clone();
        if let Some((sched, owner)) = waker {
            sched.unpark(owner);
        }
    }
}

/// Two slots per `(key, dst, type)`, used alternately.
struct Entry {
    slots: [Arc<dyn Any + Send + Sync>; 2],
    flip: usize,
}

/// A per-processor pool of reusable send buffers.
#[derive(Default)]
pub struct BufferPool {
    entries: HashMap<(u64, usize, TypeId), Entry>,
    /// Slot rotations restored from an epoch checkpoint, consulted when an
    /// entry is first (re-)created after a crash respawn. Only the rotation
    /// survives a crash: at an epoch boundary every staged buffer has been
    /// consumed and returned (the boundary flush guarantees it), so fresh
    /// default buffers with the checkpointed flip reproduce the pool's
    /// observable behaviour exactly.
    restored: HashMap<(u64, usize, TypeId), usize>,
}

impl BufferPool {
    /// The slot to use for the next send of a `B` to `dst` under plan
    /// `key`, advancing the two-slot rotation. Creates (and allocates) the
    /// entry on first use; steady-state calls only flip an index.
    pub fn next_slot<B: Reusable>(&mut self, key: u64, dst: usize) -> Arc<PoolSlot<B>> {
        let k = (key, dst, TypeId::of::<B>());
        let restored = &self.restored;
        let entry = self.entries.entry(k).or_insert_with(|| Entry {
            slots: [
                Arc::new(PoolSlot::<B>::new()),
                Arc::new(PoolSlot::<B>::new()),
            ],
            flip: restored.get(&k).copied().unwrap_or(0),
        });
        let slot = Arc::clone(&entry.slots[entry.flip]);
        entry.flip ^= 1;
        slot.downcast::<PoolSlot<B>>()
            .expect("pool entry type mismatch")
    }

    /// Freeze the pool's slot rotation for an epoch checkpoint. Rotations
    /// restored earlier but not yet re-materialised as live entries are
    /// carried through, so repeated snapshot/restore cycles are lossless.
    pub fn snapshot(&self) -> PoolSnapshot {
        let mut flips = self.restored.clone();
        for (k, e) in &self.entries {
            flips.insert(*k, e.flip);
        }
        PoolSnapshot { flips }
    }

    /// Reset this (fresh) pool to a checkpointed rotation — the inverse of
    /// [`BufferPool::snapshot`], used when a crashed processor is respawned.
    pub fn restore(&mut self, snap: &PoolSnapshot) {
        self.entries.clear();
        self.restored = snap.flips.clone();
    }

    /// The slot handed out by the most recent [`BufferPool::next_slot`] for
    /// this `(key, dst, type)` — the one currently in flight. Used by the
    /// self-message path, where sender and receiver are the same processor.
    pub fn current_slot<B: Reusable>(&self, key: u64, dst: usize) -> Arc<PoolSlot<B>> {
        let entry = self
            .entries
            .get(&(key, dst, TypeId::of::<B>()))
            .expect("current_slot before any next_slot");
        let slot = Arc::clone(&entry.slots[entry.flip ^ 1]);
        slot.downcast::<PoolSlot<B>>()
            .expect("pool entry type mismatch")
    }
}

/// Opaque checkpoint of a [`BufferPool`]'s slot rotation (which of the two
/// slots each `(plan key, destination, payload type)` entry hands out next).
/// Captured at epoch boundaries by the crash-recovery machinery; see
/// [`crate::recovery`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    flips: HashMap<(u64, usize, TypeId), usize>,
}

static NEXT_POOL_KEY: AtomicU64 = AtomicU64::new(1);

/// A process-unique pool key. Each plan takes one at planning time; pools
/// are per-processor, so keys only need to be unique locally — but a global
/// counter is the simplest way to also keep them unique across plans.
pub fn fresh_pool_key() -> u64 {
    NEXT_POOL_KEY.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_state_machine_roundtrip() {
        let slot = PoolSlot::<Vec<i32>>::new();
        let mut b = slot.try_checkout().expect("fresh slot is free");
        assert!(slot.try_checkout().is_none(), "empty slot is not free");
        b.push(7);
        slot.stash(b);
        assert_eq!(slot.staged_words(), 1);
        assert!(slot.try_checkout().is_none(), "staged slot is not free");
        let got = slot.take_staged();
        assert_eq!(got, vec![7]);
        slot.put_back(got);
        let again = slot.try_checkout().expect("returned slot is free again");
        assert!(again.is_empty(), "put_back resets contents");
        assert!(again.capacity() >= 1, "put_back keeps capacity");
    }

    #[test]
    fn pool_alternates_two_slots_per_destination() {
        let mut pool = BufferPool::default();
        let a = pool.next_slot::<Vec<i32>>(1, 0);
        let cur_a = pool.current_slot::<Vec<i32>>(1, 0);
        assert!(Arc::ptr_eq(&a, &cur_a));
        let b = pool.next_slot::<Vec<i32>>(1, 0);
        assert!(!Arc::ptr_eq(&a, &b));
        let c = pool.next_slot::<Vec<i32>>(1, 0);
        assert!(Arc::ptr_eq(&a, &c), "third checkout reuses the first slot");
        // Different keys, destinations, and types get distinct entries.
        let other = pool.next_slot::<Vec<i32>>(2, 0);
        assert!(!Arc::ptr_eq(&a, &other));
        let _typed = pool.next_slot::<Vec<(u32, i32)>>(1, 0);
    }

    #[test]
    fn fresh_keys_are_unique() {
        let a = fresh_pool_key();
        let b = fresh_pool_key();
        assert_ne!(a, b);
    }

    proptest::proptest! {
        /// The pool's checkpoint captures exactly its observable state (the
        /// per-entry slot rotation): after an arbitrary checkout history,
        /// restoring a fresh pool from the snapshot must make it
        /// indistinguishable — identical re-snapshot, and identical slot
        /// parity on every subsequent checkout.
        #[test]
        fn pool_snapshot_restore_roundtrip(
            history in proptest::collection::vec((0u64..3, 0usize..3), 0..40),
            future in proptest::collection::vec((0u64..3, 0usize..3), 0..10),
        ) {
            let mut pool = BufferPool::default();
            for &(key, dst) in &history {
                pool.next_slot::<Vec<i32>>(key, dst);
            }
            let snap = pool.snapshot();

            let mut respawned = BufferPool::default();
            respawned.restore(&snap);
            proptest::prop_assert_eq!(&respawned.snapshot(), &snap,
                "restore must reproduce the checkpointed rotation");

            // Both pools rotate in lockstep from here on. Slot *identity*
            // differs (the respawned pool allocates fresh slots) but the
            // parity — which of the two slots each checkout yields — must
            // match, which we observe through a second snapshot.
            for &(key, dst) in &future {
                pool.next_slot::<Vec<i32>>(key, dst);
                respawned.next_slot::<Vec<i32>>(key, dst);
            }
            proptest::prop_assert_eq!(&respawned.snapshot(), &pool.snapshot());
        }
    }
}
