//! Failure injection: the machine must fail loudly and informatively on
//! program errors — mismatched payload types, deadlocks, malformed groups —
//! rather than corrupting data or hanging forever.

use std::time::Duration;

use hpf_machine::{tags, CostModel, Group, Machine, ProcGrid};

#[test]
#[should_panic(expected = "payload type mismatch")]
fn mismatched_payload_types_panic() {
    let m = Machine::new(ProcGrid::line(2), CostModel::zero());
    m.run(|p| {
        if p.id() == 0 {
            p.send(1, tags::USER, vec![1i32, 2, 3]);
        } else {
            // Receiver expects i64 where i32 was sent.
            let _: Vec<i64> = p.recv(0, tags::USER);
        }
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn receive_with_no_sender_times_out() {
    let m = Machine::new(ProcGrid::line(2), CostModel::zero())
        .with_recv_timeout(Duration::from_millis(50));
    m.run(|p| {
        if p.id() == 1 {
            let _: Vec<i32> = p.recv(0, tags::USER); // nobody sends
        }
    });
}

#[test]
#[should_panic(expected = "my_rank out of range")]
fn group_with_bad_rank_panics() {
    let _ = Group::new(vec![0, 1, 2], 3);
}

#[test]
fn worker_panic_propagates_to_the_driver() {
    let m = Machine::new(ProcGrid::line(4), CostModel::zero());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run(|p| {
            if p.id() == 2 {
                panic!("worker exploded");
            }
        });
    }));
    let err = result.expect_err("driver must propagate the worker panic");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("worker exploded"), "got: {msg}");
}

#[test]
fn tracing_spans_partition_the_timeline() {
    use hpf_machine::Category;
    let m = Machine::new(
        ProcGrid::line(2),
        CostModel {
            delta_ns: 1.0,
            ..CostModel::zero()
        },
    )
    .with_tracing(true);
    let out = m.run(|p| {
        p.with_category(Category::LocalComp, |p| p.charge_ops(100));
        p.with_category(Category::ManyToMany, |p| p.charge_ops(50));
        p.with_category(Category::LocalComp, |p| p.charge_ops(25));
    });
    for trace in &out.traces {
        // Spans are contiguous, start at 0, and end at the clock's final time.
        assert!(!trace.is_empty());
        assert_eq!(trace[0].start_ns, 0.0);
        for pair in trace.windows(2) {
            assert_eq!(pair[0].end_ns, pair[1].start_ns, "spans must be contiguous");
        }
        let total: f64 = trace.iter().map(|s| s.len_ns()).sum();
        assert_eq!(total, 175.0);
        // Category totals agree with the clock's per-category accounting.
        let local: f64 = trace
            .iter()
            .filter(|s| s.category == Category::LocalComp)
            .map(|s| s.len_ns())
            .sum();
        assert_eq!(local, 125.0);
    }
    // The Gantt renders without panicking and mentions both glyphs.
    let g = out.gantt(40);
    assert!(g.contains('L') && g.contains('M'), "{g}");
}

#[test]
fn tracing_disabled_yields_empty_traces() {
    let m = Machine::new(ProcGrid::line(2), CostModel::cm5());
    let out = m.run(|p| p.charge_ops(10));
    assert!(out.traces.iter().all(Vec::is_empty));
}

#[test]
fn comm_matrix_records_per_pair_traffic() {
    let m = Machine::new(ProcGrid::line(3), CostModel::cm5());
    let out = m.run(|p| {
        // Ring: each proc sends (id + 1) words to its right neighbour.
        let next = (p.id() + 1) % 3;
        let prev = (p.id() + 2) % 3;
        p.send(next, tags::USER, vec![1i32; p.id() + 1]);
        let _: Vec<i32> = p.recv(prev, tags::USER);
        // Plus a free self-message that must not show up.
        p.send(p.id(), tags::USER, vec![0i32; 50]);
        let _: Vec<i32> = p.recv(p.id(), tags::USER);
    });
    assert_eq!(out.comm_matrix[0][1], 1);
    assert_eq!(out.comm_matrix[1][2], 2);
    assert_eq!(out.comm_matrix[2][0], 3);
    for (s, row) in out.comm_matrix.iter().enumerate() {
        assert_eq!(row[s], 0, "self traffic must not be charged");
    }
    assert_eq!(out.heaviest_flow(), Some((2, 0, 3)));
    // Imbalance: totals are [1, 2, 3], max/mean = 3 / 2 = 1.5.
    assert!((out.send_imbalance() - 1.5).abs() < 1e-12);
}
