//! Integration coverage for the observability layer: structured events,
//! per-processor metrics, and their agreement with the clock's transport
//! diagnostics under a seeded fault plan.

use hpf_machine::{tags, CostModel, EventKind, FaultPlan, Machine, Proc, ProcGrid};

/// Eight rounds of ring traffic — enough messages that a 30–40 % fault rate
/// is all but guaranteed to force retransmissions and duplicate drops.
fn ring_rounds(p: &mut Proc) {
    let n = p.nprocs();
    let next = (p.id() + 1) % n;
    let prev = (p.id() + n - 1) % n;
    for round in 0..8u64 {
        p.with_stage("test.ring", |p| {
            p.send(next, tags::USER + round, vec![p.id() as i32; 4]);
            let _: Vec<i32> = p.recv(prev, tags::USER + round);
        });
    }
}

fn faulted_machine(seed: u64) -> Machine {
    Machine::new(ProcGrid::line(4), CostModel::cm5())
        .with_test_preset()
        .with_tracing(true)
        .with_metrics(true)
        .with_faults(
            FaultPlan::new(seed)
                .with_drop(0.3)
                .with_duplicate(0.3)
                .with_reorder(0.2),
        )
}

/// The metrics registry and the event log are independent observers of the
/// same transport; both must agree with the clock's fold-in counters for a
/// seeded plan.
#[test]
fn metrics_and_events_match_clock_transport_counters() {
    let out = faulted_machine(42)
        .try_run(ring_rounds)
        .expect("reliable transport recovers from non-crash faults");

    let clock_retx = out.total_retransmits();
    let clock_dups = out.total_dup_drops();
    assert!(
        clock_retx > 0 && clock_dups > 0,
        "seed 42 at 30%/30%/20% over 32 messages must retry and dedup \
         (got {clock_retx} retransmits, {clock_dups} dup-drops)"
    );

    let merged = out.merged_metrics();
    assert_eq!(merged.counter("transport.retransmits"), clock_retx);
    assert_eq!(merged.counter("transport.dup_drops"), clock_dups);
    assert_eq!(
        merged.histograms["transport.retry_latency_us"].count, clock_retx,
        "every retransmit must contribute one retry-latency sample"
    );

    let event_retx = out
        .events
        .iter()
        .flatten()
        .filter(|e| matches!(e.kind, EventKind::Retransmit { .. }))
        .count() as u64;
    let event_dups = out
        .events
        .iter()
        .flatten()
        .filter(|e| matches!(e.kind, EventKind::DupDrop { .. }))
        .count() as u64;
    assert_eq!(event_retx, clock_retx);
    assert_eq!(event_dups, clock_dups);

    // Per-processor agreement, not just in aggregate.
    for (pid, (clock, snap)) in out.clocks.iter().zip(&out.metrics).enumerate() {
        assert_eq!(
            snap.counter("transport.retransmits"),
            clock.retransmits,
            "proc {pid} retransmit counter disagrees with its clock"
        );
        assert_eq!(
            snap.counter("transport.dup_drops"),
            clock.dup_drops,
            "proc {pid} dup-drop counter disagrees with its clock"
        );
    }
}

/// Every charged send must be observed exactly once by the sender and its
/// delivery exactly once by the receiver, faults notwithstanding.
#[test]
fn send_and_recv_events_are_exactly_once_under_faults() {
    let out = faulted_machine(7).try_run(ring_rounds).expect("recovers");
    for (pid, evs) in out.events.iter().enumerate() {
        let sends = evs
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .count();
        let recvs = evs
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Recv { .. }))
            .count();
        assert_eq!(sends, 8, "proc {pid} sent 8 charged messages");
        assert_eq!(
            recvs, 8,
            "proc {pid} must observe each delivery once despite dups/retries"
        );
        // Sequenced traffic carries its transport sequence numbers.
        assert!(evs.iter().all(|e| match e.kind {
            EventKind::Send { seq, .. } | EventKind::Recv { seq, .. } => seq.is_some(),
            _ => true,
        }));
    }
    let merged = out.merged_metrics();
    assert_eq!(merged.counter("msg.sent"), 32);
    assert_eq!(merged.counter("msg.recvd"), 32);
    // 4-word payloads land in the [4, 8) log₂ bucket.
    assert_eq!(merged.histograms["msg.words"].count, 32);
    assert_eq!(merged.histograms["msg.words"].buckets, vec![(3, 32)]);
}

/// Every delivery is eventually consumed, and each consume's `arrival_ns`
/// equals some matching send's `arrival_ns` bit-for-bit — the join the
/// critical-path analyzer relies on.
#[test]
fn consume_events_pair_with_sends_on_arrival_time() {
    let out = faulted_machine(42).try_run(ring_rounds).expect("recovers");
    let mut send_arrivals: Vec<(usize, usize, f64)> = Vec::new(); // (src, dst, arrival)
    for (pid, evs) in out.events.iter().enumerate() {
        for e in evs {
            if let EventKind::Send {
                dst, arrival_ns, ..
            } = e.kind
            {
                send_arrivals.push((pid, dst, arrival_ns));
            }
        }
    }
    for (pid, evs) in out.events.iter().enumerate() {
        let consumes: Vec<_> = evs
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Consume {
                    src,
                    arrival_ns,
                    waited_ns,
                    ..
                } => Some((src, arrival_ns, waited_ns, e.ts_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(consumes.len(), 8, "proc {pid} consumed its 8 messages");
        for (src, arrival, waited, ts) in consumes {
            assert!(
                send_arrivals
                    .iter()
                    .any(|&(s, d, a)| s == src && d == pid && a == arrival),
                "proc {pid}: consume from {src} at arrival {arrival} has no matching send"
            );
            assert!(waited >= 0.0 && ts >= arrival);
        }
    }
}

/// Uneven work before a clock sync must record Barrier events on the
/// processors that jumped, owned by the slowest processor.
#[test]
fn clock_sync_records_barrier_owned_by_slowest() {
    let machine = Machine::new(ProcGrid::line(4), CostModel::cm5())
        .with_test_preset()
        .with_tracing(true);
    let out = machine.run(|p| {
        // Proc 3 does the most local work, so it owns the barrier.
        p.charge_ops(100 * (p.id() + 1));
        let world = p.world();
        p.clock_sync_max(&world);
    });
    let t_end = out.max_time_ms();
    for (pid, evs) in out.events.iter().enumerate() {
        let barriers: Vec<_> = evs
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Barrier { owner, waited_ns } => Some((owner, waited_ns, e.ts_ns)),
                _ => None,
            })
            .collect();
        if pid == 3 {
            assert!(barriers.is_empty(), "the slowest proc never waits");
        } else {
            assert_eq!(barriers.len(), 1, "proc {pid} jumped exactly once");
            let (owner, waited, ts) = barriers[0];
            assert_eq!(owner, 3, "proc {pid} waited on the slowest proc");
            assert!(waited > 0.0);
            assert_eq!(ts / 1e6, t_end, "barrier lands at the synced time");
        }
    }
}

/// Stage spans must nest (begin/end balance) and feed duration histograms.
#[test]
fn stage_spans_balance_and_feed_histograms() {
    let out = faulted_machine(3).try_run(ring_rounds).expect("recovers");
    for evs in &out.events {
        let mut depth = 0i64;
        for e in evs {
            match e.kind {
                EventKind::SpanBegin { .. } => depth += 1,
                EventKind::SpanEnd { .. } => {
                    depth -= 1;
                    assert!(depth >= 0, "span end without begin");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced stage spans");
    }
    let merged = out.merged_metrics();
    assert_eq!(
        merged.histograms["stage.test.ring.us"].count,
        4 * 8,
        "each proc observes each of its 8 stage executions"
    );
}

/// The faulted-run Chrome export must carry the acceptance-criteria event
/// set (send/recv/retransmit) and be structurally sound.
#[test]
fn chrome_trace_export_contains_fault_annotations() {
    let out = faulted_machine(42).try_run(ring_rounds).expect("recovers");
    let json = out.chrome_trace_json();
    for needle in [
        "\"traceEvents\"",
        "\"name\":\"send\"",
        "\"name\":\"recv\"",
        "\"name\":\"retransmit\"",
        "\"name\":\"dup-drop\"",
        "\"name\":\"fault-verdict\"",
        "\"name\":\"test.ring\"",
        "\"ph\":\"X\"",
    ] {
        assert!(json.contains(needle), "missing {needle}");
    }
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced JSON structure");
}

/// Observability off (the default) must leave no residue in the output.
#[test]
fn disabled_observability_records_nothing() {
    let out = Machine::new(ProcGrid::line(4), CostModel::cm5())
        .with_test_preset()
        .run(ring_rounds);
    assert_eq!(out.total_events(), 0);
    assert!(out.merged_metrics().counters.is_empty());
    // And events/metrics are deterministic across traced runs of the same
    // seeded machine.
    let a = faulted_machine(11).try_run(ring_rounds).expect("recovers");
    let b = faulted_machine(11).try_run(ring_rounds).expect("recovers");
    assert_eq!(
        a.merged_metrics().counter("msg.sent"),
        b.merged_metrics().counter("msg.sent")
    );
    assert_eq!(a.total_words_sent(), b.total_words_sent());
}

/// A two-epoch ring program: checkpointable under `run_recoverable`, and a
/// plain program (the boundary degrades to a barrier) under `run`.
fn two_epoch_ring(p: &mut Proc) -> i32 {
    let n = p.nprocs();
    let next = (p.id() + 1) % n;
    let prev = (p.id() + n - 1) % n;
    let mut st = p.id() as i32;
    for round in 0..2u64 {
        p.epoch(&mut st, |p, st| {
            p.send(next, tags::USER + round, vec![*st]);
            let got: Vec<i32> = p.recv(prev, tags::USER + round);
            *st = st.wrapping_add(got[0]);
        });
    }
    st
}

/// Recovery telemetry is strictly opt-in: plain runs and fault-free
/// recoverable runs must leave no replay counters, spans, or markers behind;
/// only an actual crash-and-recover emits them.
#[test]
fn recovery_telemetry_appears_only_when_recovery_happens() {
    let observed = || {
        Machine::new(ProcGrid::line(4), CostModel::cm5())
            .with_test_preset()
            .with_tracing(true)
            .with_metrics(true)
    };
    let assert_no_replay_residue = |out: &hpf_machine::RunOutput<i32>, what: &str| {
        let merged = out.merged_metrics();
        for c in [
            "recovery.replays",
            "recovery.replayed_frames",
            "recovery.replay_ms",
        ] {
            assert_eq!(merged.counter(c), 0, "{what}: spurious {c}");
        }
        let json = out.chrome_trace_json();
        assert!(
            !json.contains("recovery.replay"),
            "{what}: replay span in trace"
        );
        assert!(
            !json.contains("recovery.resume"),
            "{what}: resume marker in trace"
        );
    };

    // Plain run of the same epoch-structured program: no recovery residue,
    // not even epoch counters.
    let plain = observed().run(two_epoch_ring);
    assert!(
        plain.recovery.is_none(),
        "plain run must not report recovery stats"
    );
    assert_eq!(plain.merged_metrics().counter("recovery.epochs"), 0);
    assert_no_replay_residue(&plain, "plain run");

    // Fault-free recoverable run: epoch checkpoints are counted, but there
    // are no replays and no replay spans.
    let fault_free = observed()
        .with_faults(FaultPlan::new(7))
        .run_recoverable(two_epoch_ring)
        .expect("fault-free recoverable run");
    let rec = fault_free
        .recovery
        .as_ref()
        .expect("recoverable run reports stats");
    assert_eq!(rec.replays, 0, "fault-free run must not replay");
    assert_eq!(
        fault_free.merged_metrics().counter("recovery.epochs"),
        2 * 4
    );
    assert_no_replay_residue(&fault_free, "fault-free recoverable run");

    // A crashed run emits the replay counters, the replay span, and the
    // resume marker — while results stay bit-identical to the clean run.
    let crashed = observed()
        .with_faults(FaultPlan::new(7).with_crash(1, 1))
        .run_recoverable(two_epoch_ring)
        .expect("crash must recover");
    let rec = crashed
        .recovery
        .as_ref()
        .expect("recoverable run reports stats");
    assert_eq!(rec.replays, 1);
    let merged = crashed.merged_metrics();
    assert_eq!(merged.counter("recovery.replays"), 1);
    // How many frames the replay re-injects is wall-clock dependent (it
    // can be zero when the respawn wins the race against the peers'
    // sends), so only the counter's consistency is asserted here.
    assert_eq!(
        merged.counter("recovery.replayed_frames"),
        rec.replayed_frames
    );
    assert!(merged.counter("recovery.replay_ms") >= 1);
    let json = crashed.chrome_trace_json();
    assert!(
        json.contains("recovery.replay"),
        "crashed trace lacks replay span"
    );
    assert!(
        json.contains("recovery.resume"),
        "crashed trace lacks resume marker"
    );
    assert_eq!(crashed.results, fault_free.results);

    // Post-recovery the replay-log memory gauge must sit at its truncation
    // floor: the final epoch boundary's checkpoint covers every logged
    // frame, so nothing is retained.
    let replay_log = &merged.gauges["mem.replay_log.cur"];
    assert!(
        replay_log.max > 0,
        "epoch frames were logged, so the replay-log gauge saw a peak"
    );
    assert_eq!(
        replay_log.last, 0,
        "final boundary must truncate the replay log back to zero"
    );
}

/// Like [`two_epoch_ring`] but with a deliberately fat epoch-0 payload: the
/// 64-word message sets a 256-byte mailbox/replay-log high-water mark that
/// the tiny epoch-1 traffic can never reproduce, so peak survival across
/// the epoch-boundary snapshot restore is observable.
fn lopsided_epoch_ring(p: &mut Proc) -> i32 {
    let n = p.nprocs();
    let next = (p.id() + 1) % n;
    let prev = (p.id() + n - 1) % n;
    let mut st = p.id() as i32;
    for round in 0..2u64 {
        p.epoch(&mut st, |p, st| {
            let words = if round == 0 { 64 } else { 1 };
            p.send(next, tags::USER + round, vec![*st; words]);
            let got: Vec<i32> = p.recv(prev, tags::USER + round);
            *st = st.wrapping_add(got[0]);
        });
    }
    st
}

/// Memory-gauge semantics across epochs: the all-run high-water (`max`)
/// must survive both the epoch-boundary snapshot/restore cycle and a
/// crash-recovery replay, while the current value (`last`) must drain back
/// to zero — a replay that re-charged without releasing (double-counting)
/// would leave a residue, and a restore that merged instead of overwrote
/// would inflate the peak.
#[test]
fn mem_gauge_peaks_survive_restore_without_double_counting() {
    let observed = || {
        Machine::new(ProcGrid::line(4), CostModel::cm5())
            .with_test_preset()
            .with_tracing(true)
            .with_metrics(true)
    };
    let check = |out: &hpf_machine::RunOutput<i32>, what: &str| {
        let merged = out.merged_metrics();
        let mailbox = &merged.gauges["mem.mailbox.cur"];
        assert!(
            mailbox.max >= 256,
            "{what}: epoch-0's 64-word message must set a >=256-byte \
             mailbox peak (got {})",
            mailbox.max
        );
        assert_eq!(
            mailbox.last, 0,
            "{what}: every delivery was consumed, so the mailbox gauge \
             must drain back to zero"
        );
        let replay = &merged.gauges["mem.replay_log.cur"];
        assert!(
            replay.max >= 256,
            "{what}: the epoch-0 frame stays logged until its boundary, \
             so the replay-log peak covers it (got {})",
            replay.max
        ); // requires sequenced transport — see the fault plans below
        assert_eq!(
            replay.last, 0,
            "{what}: each boundary truncates the frames its checkpoint \
             covers, so the log ends at its zero floor"
        );
    };

    // The crash-free baseline still needs a non-benign plan: a benign one
    // skips the sequenced transport entirely, and with it the replay log.
    // A crash step the program never reaches arms the transport without
    // ever firing.
    let clean = observed()
        .with_faults(FaultPlan::new(5).with_crash(1, 99))
        .run_recoverable(lopsided_epoch_ring)
        .expect("crash-free recoverable run");
    assert_eq!(clean.recovery.as_ref().expect("stats").replays, 0);
    check(&clean, "crash-free run");

    // Crash proc 1 on its second send — inside epoch 1, after the epoch-0
    // checkpoint. The respawn restores epoch-0's metrics snapshot (which
    // already contains the 256-byte peaks) and replays epoch-1 frames.
    let crashed = observed()
        .with_faults(FaultPlan::new(5).with_crash(1, 2))
        .run_recoverable(lopsided_epoch_ring)
        .expect("crash must recover");
    assert_eq!(
        crashed.recovery.as_ref().expect("stats").replays,
        1,
        "the send-step crash must fire exactly once"
    );
    check(&crashed, "crashed run");
    assert_eq!(crashed.results, clean.results);

    // The recovered peak matches the fault-free run's bit-for-bit: restore
    // overwrites rather than merges (a respawned processor's pre-restore
    // re-execution must not stack on top of the snapshot), and the
    // replay's re-charges release symmetrically.
    assert_eq!(
        crashed.merged_metrics().gauges["mem.mailbox.cur"].max,
        clean.merged_metrics().gauges["mem.mailbox.cur"].max,
        "crash recovery must neither inflate (double-count) nor lose the \
         mailbox high-water mark"
    );
}
