//! Scheduler determinism: the cooperative worker pool must be an invisible
//! implementation detail. For any pool size — one permit, a few, or one
//! per core — the same program must produce bit-identical results,
//! simulated clocks, event streams, and metrics, because execution order
//! is drawn from the deterministic ready-queue (simulated time, proc id),
//! never from OS scheduling (DESIGN.md §15).
//!
//! Wall-clock observables (retransmit counts under faults, `alloc.*`
//! counters past the ring capacity, gauge *maxima* like `mailbox.depth`)
//! legitimately vary with the interleaving, so the comparisons below are
//! over the schedule-invariant set: per-processor event streams
//! canonicalized by (timestamp, kind) and metric snapshots filtered to
//! counters (minus `alloc.*`), gauge last-values (minus `mailbox.depth`
//! and `mem.payload.cur`, whose final value depends on when the last
//! Arc-shared packet copy drops at teardown), and histograms.

use proptest::prelude::*;

use hpf_machine::collectives::{
    allreduce_sum, alltoallv, prefix_reduction_sum, A2aSchedule, PrsAlgorithm,
};
use hpf_machine::{
    tags, Category, CostModel, FaultPlan, Machine, PoolSlot, Proc, ProcGrid, RunOutput,
};

/// Mixed workload touching every park point: ring traffic (frame receive),
/// collectives (clock-sync barriers), pooled sends (buffer-pool
/// back-pressure), plus staged local work so event streams are nontrivial.
fn mixed_workload(p: &mut Proc) -> Vec<i64> {
    let n = p.nprocs();
    let next = (p.id() + 1) % n;
    let prev = (p.id() + n - 1) % n;
    let mut acc: Vec<i64> = vec![p.id() as i64 + 1];
    for round in 0..3u64 {
        p.with_stage("test.ring", |p| {
            p.send(next, tags::USER + round, acc.clone());
            let got: Vec<i64> = p.recv(prev, tags::USER + round);
            acc.extend(got);
            acc.push(acc.iter().sum());
        });
        p.with_category(Category::LocalComp, |p| p.charge_ops(25));
    }
    let g = p.world();
    let total = allreduce_sum(p, &g, &[acc.len() as i64], PrsAlgorithm::Auto);
    acc.push(total[0]);
    // One pooled round-trip per ring neighbor: checkout, stash, send, and
    // decode the inbound slot back to its owner.
    let key = hpf_machine::fresh_pool_key();
    let (slot, mut buf) = p.pool_checkout::<Vec<i64>>(key, next);
    buf.push(acc[0]);
    slot.stash(buf);
    p.send_pooled(next, tags::USER + 10, &slot);
    let pkt = p.recv_packet(prev, tags::USER + 10);
    let inbound = pkt
        .data
        .downcast::<PoolSlot<Vec<i64>>>()
        .expect("pooled send delivers the slot");
    let got = inbound.take_staged();
    acc.push(got[0]);
    inbound.put_back(got);
    acc
}

fn machine(p: usize, workers: usize) -> Machine {
    Machine::new(ProcGrid::line(p), CostModel::cm5())
        .with_test_preset()
        .with_tracing(true)
        .with_metrics(true)
        .with_workers(workers)
}

fn assert_clocks_identical<R>(a: &RunOutput<R>, b: &RunOutput<R>, what: &str) {
    for (ca, cb) in a.clocks.iter().zip(&b.clocks) {
        assert_eq!(ca.now_ms(), cb.now_ms(), "{what}: final clock differs");
        for cat in Category::ALL {
            assert_eq!(ca.cat_ms(cat), cb.cat_ms(cat), "{what}: {cat:?} differs");
        }
        assert_eq!(ca.ops, cb.ops, "{what}: ops differ");
        assert_eq!(ca.words_sent, cb.words_sent, "{what}: words differ");
        assert_eq!(ca.startups, cb.startups, "{what}: startups differ");
    }
    assert_eq!(a.comm_matrix, b.comm_matrix, "{what}: comm matrix differs");
}

/// Per-processor event streams, canonicalized: record order within one log
/// can vary with the interleaving (a receive is logged at dispatch, which
/// may happen inside another call's pump loop), but the *set* of
/// (timestamp, event) pairs per processor is schedule-invariant.
fn canonical_events<R>(out: &RunOutput<R>) -> Vec<Vec<(u64, String)>> {
    out.events
        .iter()
        .map(|evs| {
            let mut v: Vec<(u64, String)> = evs
                .iter()
                .map(|e| (e.ts_ns.to_bits(), format!("{:?}", e.kind)))
                .collect();
            v.sort();
            v
        })
        .collect()
}

/// The schedule-invariant slice of each processor's metrics.
#[allow(clippy::type_complexity)]
fn canonical_metrics<R>(
    out: &RunOutput<R>,
) -> Vec<(Vec<(String, u64)>, Vec<(String, u64)>, String)> {
    out.metrics
        .iter()
        .map(|m| {
            let counters: Vec<(String, u64)> = m
                .counters
                .iter()
                .filter(|(k, _)| !k.starts_with("alloc."))
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let gauges: Vec<(String, u64)> = m
                .gauges
                .iter()
                .filter(|(k, _)| k.as_str() != "mailbox.depth" && k.as_str() != "mem.payload.cur")
                .map(|(k, v)| (k.clone(), v.last))
                .collect();
            (counters, gauges, format!("{:?}", m.histograms))
        })
        .collect()
}

/// The tentpole acceptance check: one permit, a few, and
/// available-parallelism pools all produce the same run, observably.
#[test]
fn all_pool_sizes_produce_the_identical_run() {
    const P: usize = 8;
    let reference = machine(P, 1).run(mixed_workload);
    let ncores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for workers in [2usize, 4, ncores] {
        let out = machine(P, workers).run(mixed_workload);
        let what = format!("workers={workers}");
        assert_eq!(reference.results, out.results, "{what}: results differ");
        assert_clocks_identical(&reference, &out, &what);
        assert_eq!(
            canonical_events(&reference),
            canonical_events(&out),
            "{what}: event streams differ"
        );
        assert_eq!(
            canonical_metrics(&reference),
            canonical_metrics(&out),
            "{what}: metrics differ"
        );
    }
}

/// Buffer-pool back-pressure must park (not spin, not deadlock) even when
/// a single permit serializes everything: the third checkout of one
/// (key, dst) entry cannot proceed until the receiver runs and returns a
/// slot, which only happens because the blocked sender releases its permit.
#[test]
fn pool_backpressure_parks_under_a_single_permit() {
    let out = Machine::new(ProcGrid::line(2), CostModel::cm5())
        .with_test_preset()
        .with_workers(1)
        .run(|p| {
            let peer = 1 - p.id();
            let key = hpf_machine::fresh_pool_key();
            if p.id() == 0 {
                for i in 0..3u64 {
                    let (slot, mut buf) = p.pool_checkout::<Vec<i64>>(key, peer);
                    buf.push(i as i64 * 7);
                    slot.stash(buf);
                    p.send_pooled(peer, tags::USER + i, &slot);
                }
                0
            } else {
                let mut sum = 0i64;
                for i in 0..3u64 {
                    let pkt = p.recv_packet(peer, tags::USER + i);
                    let slot = pkt
                        .data
                        .downcast::<PoolSlot<Vec<i64>>>()
                        .expect("pooled send delivers the slot");
                    let buf = slot.take_staged();
                    sum += buf[0];
                    slot.put_back(buf);
                }
                sum
            }
        });
    assert_eq!(out.results, vec![0, 21]);
}

/// Crash recovery on a small pool: the respawned victim re-enrolls with
/// the scheduler on a fresh carrier and the recovered run stays
/// bit-identical, for a pool smaller than the machine.
#[test]
fn recovery_respawn_re_enrolls_on_a_small_pool() {
    const P: usize = 4;
    fn ring(p: &mut Proc) -> Vec<i64> {
        let mut st: Vec<i64> = vec![p.id() as i64 + 1];
        for round in 0..2u64 {
            p.epoch(&mut st, |p, st| {
                let next = (p.id() + 1) % p.nprocs();
                let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
                p.send(next, tags::USER + round, st.clone());
                let got: Vec<i64> = p.recv(prev, tags::USER + round);
                st.extend(got);
            });
        }
        st
    }
    let m = |faults: FaultPlan, workers: usize| {
        Machine::new(ProcGrid::line(P), CostModel::cm5())
            .with_test_preset()
            .with_workers(workers)
            .with_faults(faults)
    };
    let clean = m(FaultPlan::new(7), 1).run_recoverable(ring).expect("run");
    for workers in [1usize, 2] {
        let crashed = m(FaultPlan::new(7).with_crash(1, 2), workers)
            .run_recoverable(ring)
            .expect("run");
        assert_eq!(clean.results, crashed.results, "workers={workers}");
        assert_clocks_identical(&clean, &crashed, &format!("workers={workers}"));
        assert_eq!(crashed.recovery.as_ref().unwrap().replays, 1);
    }
}

/// Large-P smoke: a P=1024 machine on the default (core-count) pool — the
/// configuration a thread-per-proc design could not schedule sensibly —
/// completes a ring exchange plus a tree-structured scan, and matches the
/// single-permit run bit-for-bit.
#[test]
fn p1024_smoke_is_identical_across_pool_sizes() {
    const P: usize = 1024;
    fn program(p: &mut Proc) -> i64 {
        let n = p.nprocs();
        let next = (p.id() + 1) % n;
        let prev = (p.id() + n - 1) % n;
        p.send(next, tags::USER, vec![p.id() as i64]);
        let got: Vec<i64> = p.recv(prev, tags::USER);
        let g = p.world();
        let (before, _) = prefix_reduction_sum(p, &g, &[1i64], PrsAlgorithm::Split);
        got[0] + before[0]
    }
    let build = |workers: usize| {
        Machine::new(ProcGrid::line(P), CostModel::cm5())
            .with_test_preset()
            .with_workers(workers)
    };
    let a = build(1).run(program);
    let expected: Vec<i64> = (0..P)
        .map(|id| ((id + P - 1) % P) as i64 + id as i64)
        .collect();
    assert_eq!(a.results, expected);
    let ncores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let b = build(ncores.max(2)).run(program);
    assert_eq!(a.results, b.results);
    assert_clocks_identical(&a, &b, "p1024");
}

fn any_algo() -> impl Strategy<Value = PrsAlgorithm> {
    prop::sample::select(vec![
        PrsAlgorithm::Direct,
        PrsAlgorithm::Split,
        PrsAlgorithm::Auto,
        PrsAlgorithm::Hardware,
    ])
}

fn any_schedule() -> impl Strategy<Value = A2aSchedule> {
    prop::sample::select(vec![
        A2aSchedule::LinearPermutation,
        A2aSchedule::NaivePush,
        A2aSchedule::PairwiseExchange,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Collectives over arbitrary sizes, algorithms, and schedules are
    /// bit-identical between a single-permit pool and a wider one.
    /// Fault-free only: retransmit diagnostics are wall-clock observables.
    #[test]
    fn collectives_identical_across_pool_sizes(
        p in 1usize..=9,
        workers in 2usize..=5,
        algo in any_algo(),
        schedule in any_schedule(),
        seed in 0i64..100,
    ) {
        let program = move |proc: &mut Proc| {
            let g = proc.world();
            let mine: Vec<i64> =
                (0..4).map(|j| seed + (proc.id() * 13 + j * 7) as i64).collect();
            let (prefix, total) = prefix_reduction_sum(proc, &g, &mine, algo);
            let sends: Vec<Vec<i64>> = (0..proc.nprocs())
                .map(|dst| vec![seed + (proc.id() * 31 + dst) as i64])
                .collect();
            let gathered = alltoallv(proc, &g, sends, schedule);
            (prefix, total, gathered)
        };
        let a = Machine::new(ProcGrid::line(p), CostModel::cm5())
            .with_test_preset()
            .with_workers(1)
            .run(program);
        let b = Machine::new(ProcGrid::line(p), CostModel::cm5())
            .with_test_preset()
            .with_workers(workers)
            .run(program);
        prop_assert_eq!(&a.results, &b.results);
        for (ca, cb) in a.clocks.iter().zip(&b.clocks) {
            prop_assert_eq!(ca.now_ms(), cb.now_ms());
            prop_assert_eq!(ca.ops, cb.ops);
            prop_assert_eq!(ca.words_sent, cb.words_sent);
            prop_assert_eq!(ca.startups, cb.startups);
        }
    }

    /// Traced ring programs produce the same canonical event stream on any
    /// pool: the trace is part of the deterministic contract, not a
    /// best-effort diagnostic.
    #[test]
    fn event_streams_identical_across_pool_sizes(
        p in 2usize..=6,
        workers in 2usize..=4,
        rounds in 1u64..=4,
    ) {
        let program = move |proc: &mut Proc| {
            let n = proc.nprocs();
            let next = (proc.id() + 1) % n;
            let prev = (proc.id() + n - 1) % n;
            for round in 0..rounds {
                proc.with_stage("test.ring", |proc| {
                    proc.send(next, tags::USER + round, vec![proc.id() as i32; 3]);
                    let _: Vec<i32> = proc.recv(prev, tags::USER + round);
                });
            }
        };
        let a = machine(p, 1).run(program);
        let b = machine(p, workers).run(program);
        prop_assert_eq!(canonical_events(&a), canonical_events(&b));
        prop_assert_eq!(canonical_metrics(&a), canonical_metrics(&b));
    }
}
