//! Property tests for the machine substrate: collectives against serial
//! oracles over arbitrary group sizes, payload sizes, and algorithms, plus
//! clock invariants.

use proptest::prelude::*;

use hpf_machine::collectives::{
    allgather, allreduce_sum, allreduce_with, alltoallv, broadcast, gather_to_root,
    prefix_reduction_sum, scatter_from_root, A2aSchedule, PrsAlgorithm,
};
use hpf_machine::{Category, CostModel, Machine, ProcGrid};

fn any_algo() -> impl Strategy<Value = PrsAlgorithm> {
    prop::sample::select(vec![
        PrsAlgorithm::Direct,
        PrsAlgorithm::Split,
        PrsAlgorithm::Auto,
        PrsAlgorithm::Hardware,
    ])
}

fn any_schedule() -> impl Strategy<Value = A2aSchedule> {
    prop::sample::select(vec![
        A2aSchedule::LinearPermutation,
        A2aSchedule::NaivePush,
        A2aSchedule::PairwiseExchange,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn prs_all_algorithms_match_serial(
        p in 1usize..=10,
        m in 0usize..32,
        algo in any_algo(),
        seed in 0i32..500,
    ) {
        let inputs: Vec<Vec<i32>> =
            (0..p).map(|r| (0..m).map(|j| (seed + (r * 13 + j * 7) as i32) % 89).collect()).collect();
        let mut acc = vec![0i32; m];
        let mut prefixes = Vec::new();
        for v in &inputs {
            prefixes.push(acc.clone());
            for (a, b) in acc.iter_mut().zip(v) { *a += *b; }
        }
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let inp = &inputs;
        let out = machine.run(move |proc| {
            let g = proc.world();
            prefix_reduction_sum(proc, &g, &inp[proc.id()], algo)
        });
        for (r, (prefix, total)) in out.results.iter().enumerate() {
            prop_assert_eq!(prefix, &prefixes[r]);
            prop_assert_eq!(total, &acc);
        }
    }

    #[test]
    fn broadcast_from_any_root(p in 1usize..=9, root_sel in 0usize..9, len in 0usize..20) {
        let root = root_sel % p;
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let g = proc.world();
            let data = if g.my_rank() == root {
                (0..len as i32).collect()
            } else {
                Vec::new()
            };
            broadcast(proc, &g, root, data)
        });
        let want: Vec<i32> = (0..len as i32).collect();
        for r in out.results {
            prop_assert_eq!(r, want.clone());
        }
    }

    #[test]
    fn gather_scatter_inverse(p in 1usize..=8, root_sel in 0usize..8) {
        let root = root_sel % p;
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let g = proc.world();
            let mine: Vec<i32> = vec![proc.id() as i32; proc.id() % 3 + 1];
            let all = gather_to_root(proc, &g, root, mine.clone());
            let back = scatter_from_root(proc, &g, root, all);
            (mine, back)
        });
        for (mine, back) in out.results {
            prop_assert_eq!(mine, back);
        }
    }

    #[test]
    fn allgather_is_replicated_gather(p in 1usize..=8) {
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let g = proc.world();
            allgather(proc, &g, vec![proc.id() as i32 * 2 + 1])
        });
        for all in &out.results {
            for (r, v) in all.iter().enumerate() {
                prop_assert_eq!(v, &vec![r as i32 * 2 + 1]);
            }
        }
    }

    #[test]
    fn alltoall_schedules_agree(
        p in 1usize..=8,
        schedule in any_schedule(),
        base in 0usize..4,
    ) {
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let g = proc.world();
            let sends: Vec<Vec<i32>> = (0..p)
                .map(|j| vec![(proc.id() * 31 + j) as i32; base + (proc.id() + j) % 3])
                .collect();
            alltoallv(proc, &g, sends, schedule)
        });
        for (j, recvs) in out.results.iter().enumerate() {
            for (r, v) in recvs.iter().enumerate() {
                prop_assert_eq!(v.len(), base + (r + j) % 3);
                prop_assert!(v.iter().all(|&x| x == (r * 31 + j) as i32));
            }
        }
    }

    #[test]
    fn allreduce_sum_equals_with_add(p in 1usize..=8, m in 0usize..16) {
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let g = proc.world();
            let v: Vec<i64> = (0..m).map(|j| (proc.id() * 7 + j) as i64).collect();
            let a = allreduce_sum(proc, &g, &v, PrsAlgorithm::Direct);
            let b = allreduce_with(proc, &g, &v, |x, y| x + y);
            (a, b)
        });
        for (a, b) in out.results {
            prop_assert_eq!(a, b);
        }
    }

    /// Clocks never run backwards and category times sum to at most the
    /// final time (charges are the only way time advances besides waits,
    /// which are also attributed).
    #[test]
    fn category_times_sum_to_total(p in 1usize..=6, m in 1usize..64) {
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            proc.clock().set_category(Category::PrefixReductionSum);
            let g = proc.world();
            let v = vec![1i32; m];
            prefix_reduction_sum(proc, &g, &v, PrsAlgorithm::Auto);
            proc.clock().set_category(Category::LocalComp);
            proc.charge_ops(m);
        });
        for c in &out.clocks {
            let cat_sum: f64 = Category::ALL.iter().map(|&cat| c.cat_ns(cat)).sum();
            prop_assert!((cat_sum - c.now_ns).abs() < 1e-6, "sum {} vs now {}", cat_sum, c.now_ns);
        }
    }
}
