//! Crash recovery: scheduled processor crashes under
//! `Machine::run_recoverable` must be survived, and the recovered run must
//! be bit-identical — results *and* simulated clocks — to the same program
//! run without the crash.

use hpf_machine::{tags, Category, CostModel, FaultPlan, Machine, Proc, ProcGrid, RunOutput};

const P: usize = 4;

/// Two-epoch SPMD program: each epoch shifts the accumulated state around a
/// ring and folds the received values in. Deterministic per-processor
/// result that depends on traffic from both epochs.
fn two_epoch_ring(p: &mut Proc) -> Vec<i64> {
    let mut st: Vec<i64> = vec![p.id() as i64 + 1];
    for round in 0..2u64 {
        p.epoch(&mut st, |p, st| {
            p.with_category(Category::LocalComp, |p| p.charge_ops(10));
            let next = (p.id() + 1) % p.nprocs();
            let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
            p.send(next, tags::USER + round, st.clone());
            let got: Vec<i64> = p.recv(prev, tags::USER + round);
            st.extend(got);
            st.push(st.iter().sum());
        });
    }
    st
}

fn machine(faults: FaultPlan) -> Machine {
    Machine::new(ProcGrid::line(P), CostModel::cm5())
        .with_metrics(true)
        .with_faults(faults)
}

/// Clocks must agree exactly: same final time, same per-category split,
/// same charged ops/words/startups. Wall-clock diagnostics (retransmits,
/// dup drops) are excluded — recovery inevitably perturbs those.
fn assert_clocks_identical<R>(a: &RunOutput<R>, b: &RunOutput<R>) {
    for (ca, cb) in a.clocks.iter().zip(&b.clocks) {
        assert_eq!(ca.now_ms(), cb.now_ms(), "final clock differs");
        for cat in Category::ALL {
            assert_eq!(ca.cat_ms(cat), cb.cat_ms(cat), "category {cat:?} differs");
        }
        assert_eq!(ca.ops, cb.ops);
        assert_eq!(ca.words_sent, cb.words_sent);
        assert_eq!(ca.startups, cb.startups);
    }
    assert_eq!(a.comm_matrix, b.comm_matrix);
}

#[test]
fn send_crash_mid_epoch_recovers_bit_identically() {
    // Proc 1's second send fires in epoch 1, after a checkpoint exists.
    let clean = machine(FaultPlan::new(7))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    assert_eq!(
        clean.results,
        Machine::new(ProcGrid::line(P), CostModel::cm5())
            .run(two_epoch_ring)
            .results
    );
    assert_eq!(clean.recovery.as_ref().unwrap().epochs, 2 * P as u64);

    // How many frames the respawn replays depends on how far peers got
    // before the driver cloned the log — legitimately zero when the crash
    // is detected before any peer has sent into the interrupted epoch (the
    // frames then arrive through the surviving channel instead), and under
    // the cooperative scheduler the victim reports the crash before parked
    // peers advance, so zero is the common deterministic case here. The
    // recovery must be bit-identical either way; the dedicated test below
    // forces a non-empty replay by construction.
    let crashed = machine(FaultPlan::new(7).with_crash(1, 2))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    assert_eq!(clean.results, crashed.results);
    assert_clocks_identical(&clean, &crashed);
    let rec = crashed.recovery.as_ref().expect("recoverable run");
    assert_eq!(rec.replays, 1, "exactly one recovery: {rec:?}");
    assert!(rec.log_high_water_words > 0, "{rec:?}");
    assert!(rec.replay_ms > 0.0, "{rec:?}");
    // Both runs checkpoint identically: two epochs on each processor.
    assert_eq!(rec.epochs, 2 * P as u64);
}

/// Like [`two_epoch_ring`] but with two ring exchanges per epoch, so a
/// crash between them finds traffic the victim already consumed inside the
/// interrupted epoch.
fn two_epoch_double_ring(p: &mut Proc) -> Vec<i64> {
    let mut st: Vec<i64> = vec![p.id() as i64 + 1];
    for round in 0..2u64 {
        p.epoch(&mut st, |p, st| {
            p.with_category(Category::LocalComp, |p| p.charge_ops(10));
            for half in 0..2u64 {
                let next = (p.id() + 1) % p.nprocs();
                let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
                p.send(next, tags::USER + round * 2 + half, st.clone());
                let got: Vec<i64> = p.recv(prev, tags::USER + round * 2 + half);
                st.extend(got);
                st.push(st.iter().sum());
            }
        });
    }
    st
}

#[test]
fn mid_epoch_crash_replays_consumed_frames() {
    // Proc 1's fourth program-level receive is the second exchange of
    // epoch 1: by then it has consumed proc 0's first epoch-1 frame, whose
    // logging happened strictly before it hit the wire. That frame is
    // therefore guaranteed to be in the cloned replay log, with a sequence
    // number at or above the restored snapshot's expectation — a non-empty
    // replay on every schedule, no race required.
    let clean = machine(FaultPlan::new(7))
        .run_recoverable(two_epoch_double_ring)
        .expect("run");
    let crashed = machine(FaultPlan::new(7).with_crash_at_recv(1, 4))
        .run_recoverable(two_epoch_double_ring)
        .expect("run");
    assert_eq!(clean.results, crashed.results);
    assert_clocks_identical(&clean, &crashed);
    let rec = crashed.recovery.as_ref().expect("recoverable run");
    assert_eq!(rec.replays, 1, "exactly one recovery: {rec:?}");
    assert!(
        rec.replayed_frames >= 1,
        "replay must be non-empty: {rec:?}"
    );
    assert!(rec.replayed_words > 0, "{rec:?}");
    assert!(rec.replay_ms > 0.0, "{rec:?}");
}

#[test]
fn recv_crash_mid_epoch_recovers_bit_identically() {
    // Proc 2's second program-level receive fires in epoch 1.
    let clean = machine(FaultPlan::new(11))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    let crashed = machine(FaultPlan::new(11).with_crash_at_recv(2, 2))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    assert_eq!(clean.results, crashed.results);
    assert_clocks_identical(&clean, &crashed);
    assert_eq!(crashed.recovery.as_ref().unwrap().replays, 1);
}

#[test]
fn crash_before_any_checkpoint_replays_from_scratch() {
    // Proc 0's very first send fires in epoch 0 — no snapshot exists yet,
    // so recovery restarts the processor from scratch and replays the
    // never-truncated log.
    let clean = machine(FaultPlan::new(3))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    let crashed = machine(FaultPlan::new(3).with_crash(0, 1))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    assert_eq!(clean.results, crashed.results);
    assert_clocks_identical(&clean, &crashed);
    assert_eq!(crashed.recovery.as_ref().unwrap().replays, 1);
}

#[test]
fn epoch_less_program_recovers_by_full_reexecution() {
    // A program that never calls `epoch` is still recoverable: the whole
    // run is one implicit epoch and a crash restarts the victim from
    // scratch, with peers deduplicating its re-sent frames.
    fn exchange(p: &mut Proc) -> i64 {
        let next = (p.id() + 1) % p.nprocs();
        let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
        p.send(next, tags::USER, vec![p.id() as i64 * 10]);
        let got: Vec<i64> = p.recv(prev, tags::USER);
        got[0] + p.id() as i64
    }
    let clean = machine(FaultPlan::new(5))
        .run_recoverable(exchange)
        .expect("run");
    let crashed = machine(FaultPlan::new(5).with_crash(3, 1))
        .run_recoverable(exchange)
        .expect("run");
    assert_eq!(clean.results, crashed.results);
    assert_clocks_identical(&clean, &crashed);
    assert_eq!(crashed.recovery.as_ref().unwrap().replays, 1);
}

#[test]
fn recovery_survives_drop_and_delay_faults() {
    // Fault verdicts and delays are drawn from sequence numbers, and replay
    // re-injects frames with their original delayed arrivals, so clocks stay
    // bit-identical even when the link is lossy and jittery.
    let plan = || FaultPlan::new(42).with_drop(0.2).with_delay(0.3, 50_000.0);
    let clean = machine(plan())
        .run_recoverable(two_epoch_ring)
        .expect("run");
    let crashed = machine(plan().with_crash(1, 2))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    assert_eq!(clean.results, crashed.results);
    assert_clocks_identical(&clean, &crashed);
    assert_eq!(crashed.recovery.as_ref().unwrap().replays, 1);
}

#[test]
fn fault_free_recoverable_run_reports_zero_replays() {
    let out = machine(FaultPlan::new(1))
        .run_recoverable(two_epoch_ring)
        .expect("run");
    let rec = out.recovery.as_ref().expect("recoverable run");
    assert_eq!(rec.replays, 0);
    assert_eq!(rec.replayed_frames, 0);
    assert_eq!(rec.replayed_words, 0);
    assert_eq!(rec.replay_ms, 0.0);
    assert_eq!(rec.epochs, 2 * P as u64);
    // A benign plan runs without the reliable transport, so nothing is
    // sequenced and nothing needs logging — the log stays empty.
    assert_eq!(rec.log_high_water_words, 0);
    // Plain runs carry no recovery accounting at all.
    let plain = Machine::new(ProcGrid::line(P), CostModel::cm5()).run(two_epoch_ring);
    assert!(plain.recovery.is_none());
}

#[test]
fn unrecoverable_failures_still_surface_as_errors() {
    // A deadlock (receive with no sender) is not a crash and must come back
    // as the usual typed error even in recoverable mode.
    let m = Machine::new(ProcGrid::line(2), CostModel::zero())
        .with_faults(FaultPlan::new(0))
        .with_recv_timeout(std::time::Duration::from_millis(50));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run_recoverable(|p| {
            if p.id() == 1 {
                let _: Vec<i32> = p.recv(0, tags::USER);
            }
        })
    }));
    // run_recoverable returns Result; no panic expected.
    let err = result
        .expect("driver must not panic")
        .expect_err("deadlock must surface");
    assert!(
        matches!(
            err.root_cause(),
            hpf_machine::MachineError::RecvTimeout { proc: 1, .. }
        ),
        "{err}"
    );
}
