//! Domain example: compacting the strict lower triangle of a distributed
//! matrix — the paper's structured "LT" mask — as a building block for
//! triangular storage.
//!
//! Dense triangular algorithms waste half the memory and half the
//! communication bandwidth on zeros. `PACK(A, i1 > i0)` compresses the
//! strict triangle into a dense, perfectly balanced distributed vector
//! (packed row-major order), after which updates run on `Size = N(N-1)/2`
//! elements instead of `N²`. This example packs the triangle, scales it
//! (the inner kernel of a rank-1 triangular update), and unpacks it back,
//! comparing PACK schemes on the way.
//!
//! Run with:
//! ```sh
//! cargo run --release --example triangular_solver
//! ```

use hpf_packunpack::core::{
    pack, unpack, MaskPattern, PackOptions, PackScheme, UnpackOptions, UnpackScheme,
};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist, GlobalArray};
use hpf_packunpack::machine::{CostModel, Machine, ProcGrid};

const N: usize = 128;

fn entry(i0: usize, i1: usize) -> i32 {
    (i1 * N + i0) as i32 % 97 + 1
}

fn main() {
    let grid = ProcGrid::new(&[4, 4]);
    let machine = Machine::new(grid.clone(), CostModel::cm5());
    let desc = ArrayDesc::new(
        &[N, N],
        &grid,
        &[Dist::BlockCyclic(4), Dist::BlockCyclic(4)],
    )
    .unwrap();
    let lt = MaskPattern::LowerTriangular;

    println!("compacting the strict triangle of a {N}x{N} matrix on 4x4 processors");
    println!(
        "dense elements: {}, triangle elements: {}",
        N * N,
        N * (N - 1) / 2
    );

    // Compare the three schemes on the triangle pack (simulated ms).
    for scheme in PackScheme::ALL {
        let desc_ref = &desc;
        let out = machine.run(move |proc| {
            let a = local_from_fn(desc_ref, proc.id(), |g| entry(g[0], g[1]));
            let m = lt.local(desc_ref, proc.id());
            pack(proc, desc_ref, &a, &m, &PackOptions::new(scheme))
                .unwrap()
                .size
        });
        println!(
            "  {}: Size = {}, simulated total {:.3} ms",
            scheme.label(),
            out.results[0],
            out.max_time_ms()
        );
    }

    // Full round trip with the best scheme: pack -> scale by 2 -> unpack.
    let desc_ref = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), |g| entry(g[0], g[1]));
        let m = lt.local(desc_ref, proc.id());
        let packed = pack(
            proc,
            desc_ref,
            &a,
            &m,
            &PackOptions::new(PackScheme::CompactMessage),
        )
        .unwrap();
        let scaled: Vec<i32> = packed.local_v.iter().map(|&v| v * 2).collect();
        proc.charge_ops(scaled.len());
        unpack(
            proc,
            desc_ref,
            &m,
            &a,
            &scaled,
            &packed.v_layout.expect("triangle is non-empty"),
            &UnpackOptions::new(UnpackScheme::CompactStorage),
        )
        .unwrap()
    });

    let result = GlobalArray::assemble(&desc, &out.results);
    for i1 in 0..N {
        for i0 in 0..N {
            let want = if i1 > i0 {
                entry(i0, i1) * 2
            } else {
                entry(i0, i1)
            };
            assert_eq!(result.get(&[i0, i1]), want, "mismatch at ({i0},{i1})");
        }
    }
    println!(
        "round trip verified: triangle doubled, diagonal+upper untouched \
         (simulated {:.3} ms)",
        out.max_time_ms()
    );
}
