//! Quickstart: parallel PACK and UNPACK on a 1-D block-cyclic array.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Reproduces the setting of the paper's Figure 1: a 16-element vector
//! distributed block-cyclic(2) over 4 processors, packed under a mask, then
//! scattered back with UNPACK.

use hpf_packunpack::core::{pack, unpack, PackOptions, PackScheme, UnpackOptions, UnpackScheme};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist, GlobalArray};
use hpf_packunpack::machine::{Category, CostModel, Machine, ProcGrid};

fn main() {
    // A coarse-grained machine: 4 virtual processors, CM-5-style costs
    // (tau = 86 us start-up, mu = 0.5 us/word, delta = 0.25 us/op).
    let grid = ProcGrid::line(4);
    let machine = Machine::new(grid.clone(), CostModel::cm5());

    // A(16) distributed block-cyclic(2): proc 0 owns {0,1,8,9}, proc 1
    // {2,3,10,11}, and so on (Figure 1 of the paper).
    let desc = ArrayDesc::new(&[16], &grid, &[Dist::BlockCyclic(2)]).unwrap();

    // Select multiples of 3: [0, 3, 6, 9, 12, 15].
    let mask = |g: usize| g.is_multiple_of(3);

    println!("== PACK ==");
    let desc_ref = &desc;
    let out = machine.run(move |proc| {
        // Each processor seeds its own local data from the global rule —
        // no central array needed.
        let a = local_from_fn(desc_ref, proc.id(), |g| g[0] as i32 * 100);
        let m = local_from_fn(desc_ref, proc.id(), |g| mask(g[0]));
        pack(
            proc,
            desc_ref,
            &a,
            &m,
            &PackOptions::new(PackScheme::CompactMessage),
        )
        .expect("divisible layout")
    });

    let size = out.results[0].size;
    println!("Size (selected elements) = {size}");
    for (p, r) in out.results.iter().enumerate() {
        println!("proc {p}: local V = {:?}", r.local_v);
    }
    println!(
        "simulated time: total {:.3} ms (local {:.3}, prefix-reduction-sum {:.3}, many-to-many {:.3})",
        out.max_time_ms(),
        out.max_cat_ms(Category::LocalComp),
        out.max_cat_ms(Category::PrefixReductionSum),
        out.max_cat_ms(Category::ManyToMany),
    );

    // Reassemble V on the harness side just to show it.
    let layout = out.results[0].v_layout.unwrap();
    let mut v = vec![0i32; size];
    for (p, r) in out.results.iter().enumerate() {
        for (l, &x) in r.local_v.iter().enumerate() {
            v[layout.global_of(p, l)] = x;
        }
    }
    println!("V = {v:?}  (expected [0, 300, 600, 900, 1200, 1500])");

    println!("\n== UNPACK ==");
    // Scatter V back into a field of -1s under the same mask.
    let out2 = machine.run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| mask(g[0]));
        let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
        let v_local: Vec<i32> = (0..layout.local_len(proc.id()))
            .map(|l| layout.global_of(proc.id(), l) as i32)
            .collect();
        unpack(
            proc,
            desc_ref,
            &m,
            &f,
            &v_local,
            &layout,
            &UnpackOptions::new(UnpackScheme::CompactStorage),
        )
        .expect("conformable inputs")
    });
    let a_back = GlobalArray::assemble(&desc, &out2.results);
    println!("A after UNPACK(0..Size, mask, field=-1):");
    println!("{:?}", a_back.data());
    println!(
        "simulated time: total {:.3} ms (many-to-many {:.3} — two stages: request + reply)",
        out2.max_time_ms(),
        out2.max_cat_ms(Category::ManyToMany),
    );
}
