//! Domain example: a distributed 5-point heat stencil built from the
//! intrinsics layer (`CSHIFT` for halo movement, `SUM`/`MAXVAL` for global
//! diagnostics), with PACK used for the data-dependent part — extracting
//! the hot spots that exceed a threshold after each step.
//!
//! This is the HPF programming model in miniature: regular communication
//! via shift intrinsics, global reductions for convergence checks, and
//! PACK for the irregular "gather what matters" step.
//!
//! Run with:
//! ```sh
//! cargo run --release --example heat_stencil
//! ```

use hpf_packunpack::core::{pack, PackOptions, PackScheme};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_packunpack::intrinsics::{cshift_dim, maxval_all, sum_all};
use hpf_packunpack::machine::collectives::A2aSchedule;
use hpf_packunpack::machine::{CostModel, Machine, ProcGrid};

const N: usize = 64;
const STEPS: usize = 10;
const HOT: i64 = 700_000;

/// Fixed-point "temperature" (scaled by 2^20 to keep the arithmetic exact
/// and deterministic across runs).
fn initial(x: usize, y: usize) -> i64 {
    if (24..40).contains(&x) && (24..40).contains(&y) {
        1 << 20
    } else {
        0
    }
}

fn main() {
    let grid = ProcGrid::new(&[2, 2]);
    let machine = Machine::new(grid.clone(), CostModel::cm5());
    let desc = ArrayDesc::new(
        &[N, N],
        &grid,
        &[Dist::BlockCyclic(8), Dist::BlockCyclic(8)],
    )
    .unwrap();

    let desc_ref = &desc;
    let out = machine.run(move |proc| {
        let mut u = local_from_fn(desc_ref, proc.id(), |g| initial(g[0], g[1]));
        let total0 = sum_all(proc, desc_ref, &u);

        for _ in 0..STEPS {
            // Halo exchange via CSHIFT along both dimensions.
            let sched = A2aSchedule::LinearPermutation;
            let e = cshift_dim(proc, desc_ref, &u, 0, 1, sched);
            let w = cshift_dim(proc, desc_ref, &u, 0, -1, sched);
            let n = cshift_dim(proc, desc_ref, &u, 1, 1, sched);
            let s = cshift_dim(proc, desc_ref, &u, 1, -1, sched);
            // Jacobi update: u' = u + (sum of neighbours - 4u) / 8.
            for i in 0..u.len() {
                u[i] += (e[i] + w[i] + n[i] + s[i] - 4 * u[i]) / 8;
            }
            proc.charge_ops(u.len());
        }

        // Global diagnostics via reductions.
        let total = sum_all(proc, desc_ref, &u);
        let peak = maxval_all(proc, desc_ref, &u);

        // Irregular step: PACK the hot cells into a dense vector.
        let mask: Vec<bool> = u.iter().map(|&v| v > HOT).collect();
        let packed = pack(
            proc,
            desc_ref,
            &u,
            &mask,
            &PackOptions::new(PackScheme::CompactMessage),
        )
        .expect("divisible layout");
        (total0, total, peak, packed.size)
    });

    let (total0, total, peak, hot) = out.results[0];
    for r in &out.results {
        assert_eq!(r, &out.results[0], "diagnostics must be replicated");
    }
    println!("heat stencil {N}x{N} on 2x2 processors, {STEPS} Jacobi steps");
    println!("  initial heat {total0}, final heat {total} (diffusion loses to rounding only)");
    println!("  peak temperature {peak} (fixed-point, 2^20 = 1.0)");
    println!("  hot cells above {HOT}: {hot} (gathered with PACK/CMS)");
    println!("  simulated time {:.3} ms", out.max_time_ms());
    assert!(total <= total0, "heat must not be created");
    assert!(hot > 0, "the blob stays hot after {STEPS} steps");
}
