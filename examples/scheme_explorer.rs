//! Interactive-ish explorer: sweep block size and mask density for a given
//! array size and processor count, printing which PACK scheme wins where —
//! a compact, runnable summary of the paper's Sections 6–7.
//!
//! Usage:
//! ```sh
//! cargo run --release --example scheme_explorer -- [N] [P]
//! # defaults: N = 16384, P = 8
//! ```

use hpf_packunpack::core::{pack, MaskPattern, PackOptions, PackScheme};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_packunpack::machine::{CostModel, Machine, ProcGrid};

fn total_ms(n: usize, p: usize, w: usize, density: f64, scheme: PackScheme) -> f64 {
    let grid = ProcGrid::line(p);
    let machine = Machine::new(grid.clone(), CostModel::cm5());
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 42 };
    let desc_ref = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &[n]));
        pack(proc, desc_ref, &a, &m, &PackOptions::new(scheme)).unwrap();
    });
    out.max_time_ms()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16384);
    let p: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    assert!(n.is_multiple_of(p), "P must divide N");
    let local = n / p;

    println!("PACK scheme explorer: N = {n}, P = {p} (local size {local})");
    println!("cell = winning scheme (simulated total time, CM-5 cost model)\n");

    let mut blocks = Vec::new();
    let mut w = 1;
    while w <= local {
        blocks.push(w);
        w *= 4;
    }

    print!("{:>8}", "W \\ dens");
    for density in MaskPattern::DENSITIES {
        print!("  {:>14}", format!("{:.0}%", density * 100.0));
    }
    println!();
    for &w in &blocks {
        print!("{w:>8}");
        for density in MaskPattern::DENSITIES {
            let times: Vec<(PackScheme, f64)> = PackScheme::ALL
                .iter()
                .map(|&s| (s, total_ms(n, p, w, density, s)))
                .collect();
            let (best, t) = times
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .copied()
                .unwrap();
            print!("  {:>14}", format!("{} {:.2}ms", best.label(), t));
        }
        println!();
    }

    println!(
        "\nreading guide: SSS should win toward the top-left (cyclic layout, sparse \
         masks); CMS toward the bottom-right (block layout, dense masks) — the \
         crossover line is the paper's beta_1/beta_2 frontier."
    );
}
