//! Domain example: WHERE-style sparse update of a distributed 2-D field.
//!
//! A classic HPF idiom the PACK/UNPACK intrinsics exist for: extract the
//! "interesting" cells of a distributed grid into a dense vector, process
//! them (here: clamp hot pixels), and scatter the processed values back —
//! `A = UNPACK(f(PACK(A, M)), M, A)`.
//!
//! Run with:
//! ```sh
//! cargo run --release --example image_threshold
//! ```

use hpf_packunpack::core::{pack, unpack, PackOptions, PackScheme, UnpackOptions, UnpackScheme};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist, GlobalArray};
use hpf_packunpack::machine::{Category, CostModel, Machine, ProcGrid};

/// Synthetic "image": a smooth field with a hot blob.
fn pixel(x: usize, y: usize) -> i32 {
    let dx = x as i32 - 40;
    let dy = y as i32 - 24;
    let d2 = dx * dx + dy * dy;
    (255 - d2 / 4).max(10)
}

const THRESHOLD: i32 = 200;
const N0: usize = 64; // dimension 0 (fastest)
const N1: usize = 64;

fn main() {
    // 2x2 processor grid, both image dimensions block-cyclic(8).
    let grid = ProcGrid::new(&[2, 2]);
    let machine = Machine::new(grid.clone(), CostModel::cm5());
    let desc = ArrayDesc::new(
        &[N0, N1],
        &grid,
        &[Dist::BlockCyclic(8), Dist::BlockCyclic(8)],
    )
    .unwrap();

    let desc_ref = &desc;
    let out = machine.run(move |proc| {
        // Local pieces of the image and of the mask "pixel above threshold".
        let img = local_from_fn(desc_ref, proc.id(), |g| pixel(g[0], g[1]));
        let hot = local_from_fn(desc_ref, proc.id(), |g| pixel(g[0], g[1]) > THRESHOLD);

        // 1. PACK the hot pixels into a dense distributed vector.
        let packed = pack(
            proc,
            desc_ref,
            &img,
            &hot,
            &PackOptions::new(PackScheme::CompactMessage),
        )
        .expect("divisible layout");

        // 2. Process the dense vector locally (perfectly balanced: PACK's
        //    result is block-distributed). Here: clamp to the threshold.
        let processed: Vec<i32> = packed.local_v.iter().map(|&v| v.min(THRESHOLD)).collect();
        proc.charge_ops(processed.len());

        // 3. UNPACK the processed values back into the image.
        let layout = match packed.v_layout {
            Some(l) => l,
            None => return img, // nothing was hot
        };
        unpack(
            proc,
            desc_ref,
            &hot,
            &img, // FIELD = original image: untouched where not hot
            &processed,
            &layout,
            &UnpackOptions::new(UnpackScheme::CompactStorage),
        )
        .expect("conformable inputs")
    });

    // Verify against a direct sequential clamp and report.
    let result = GlobalArray::assemble(&desc, &out.results);
    let mut clamped = 0usize;
    for y in 0..N1 {
        for x in 0..N0 {
            let want = pixel(x, y).min(THRESHOLD);
            assert_eq!(result.get(&[x, y]), want, "mismatch at ({x},{y})");
            if pixel(x, y) > THRESHOLD {
                clamped += 1;
            }
        }
    }
    println!("image {N0}x{N1} on 2x2 processors: clamped {clamped} hot pixels");
    println!(
        "simulated time {:.3} ms (local {:.3}, prs {:.3}, many-to-many {:.3})",
        out.max_time_ms(),
        out.max_cat_ms(Category::LocalComp),
        out.max_cat_ms(Category::PrefixReductionSum),
        out.max_cat_ms(Category::ManyToMany),
    );
    println!("verified: result equals the sequential clamp everywhere");
}
