//! Domain example: power iteration on a PACK-compressed sparse matrix.
//!
//! The full pipeline the paper's runtime exists for: a dense-stored banded
//! matrix is compressed (and thereby load-balanced) once with PACK, then an
//! iterative solver runs on the compact distributed form — each iteration
//! is an irregular gather (x entries), local multiply, and scatter-add
//! (partial row sums), capped by global reductions for the norm.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sparse_power_iteration
//! ```

use hpf_packunpack::apps::SparseMatrix;
use hpf_packunpack::core::PackOptions;
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_packunpack::machine::collectives::{allreduce_sum, A2aSchedule, PrsAlgorithm};
use hpf_packunpack::machine::{CostModel, Machine, ProcGrid};

const N: usize = 64;
const ITERS: usize = 40;

/// Tridiagonal Laplacian (2 on the diagonal, -1 off it) with a spiked
/// corner entry, giving a well-separated dominant eigenvalue so the power
/// method converges quickly.
fn entry(col: usize, row: usize) -> f64 {
    if row == 0 && col == 0 {
        return 10.0;
    }
    match row.abs_diff(col) {
        0 => 2.0,
        1 => -1.0,
        _ => 0.0,
    }
}

/// Serial oracle: the same power iteration on the dense matrix.
fn oracle_lambda() -> f64 {
    let mut x = vec![1.0f64; N];
    let mut lambda = 0.0;
    for _ in 0..ITERS {
        let y: Vec<f64> = (0..N)
            .map(|r| (0..N).map(|c| entry(c, r) * x[c]).sum())
            .collect();
        let xy: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|v| v * v).sum();
        lambda = xy;
        let norm = yy.sqrt();
        x = y.iter().map(|v| v / norm).collect();
    }
    lambda
}

fn main() {
    let grid = ProcGrid::new(&[2, 2]);
    let machine = Machine::new(grid.clone(), CostModel::cm5());
    let desc = ArrayDesc::new(
        &[N, N],
        &grid,
        &[Dist::BlockCyclic(4), Dist::BlockCyclic(4)],
    )
    .unwrap();
    let nprocs = grid.nprocs();
    let x_layout = DimLayout::new_general(N, nprocs, N.div_ceil(nprocs)).unwrap();

    let (d, xl) = (&desc, &x_layout);
    let out = machine.run(move |proc| {
        // Compress once.
        let dense = local_from_fn(d, proc.id(), |g| entry(g[0], g[1]));
        let a = SparseMatrix::compress(proc, d, &dense, &PackOptions::default())
            .expect("divisible layout");

        // Power iteration on a block-distributed x.
        let mut x: Vec<f64> = vec![1.0; xl.local_len(proc.id())];
        let mut lambda = 0.0f64;
        for _ in 0..ITERS {
            let (y, _) = a.spmv(proc, &x, xl, A2aSchedule::LinearPermutation);
            // Rayleigh-style estimate and normalisation via global sums.
            let local: [f64; 2] = [
                x.iter().zip(&y).map(|(&xi, &yi)| xi * yi).sum(),
                y.iter().map(|&v| v * v).sum(),
            ];
            proc.charge_ops(2 * y.len());
            let world = proc.world();
            let sums = allreduce_sum(proc, &world, &local, PrsAlgorithm::Direct);
            lambda = sums[0].max(1e-30);
            let norm = sums[1].sqrt().max(1e-30);
            x = y.iter().map(|&v| v / norm).collect();
            proc.charge_ops(x.len());
        }
        (a.nnz, lambda)
    });

    let (nnz, lambda) = out.results[0];
    let want = oracle_lambda();
    println!("power iteration on a spiked {N}x{N} Laplacian (2x2 processors)");
    println!(
        "  nonzeros after PACK compression: {nnz} (dense stored {})",
        N * N
    );
    println!("  dominant eigenvalue after {ITERS} iterations: {lambda:.9}");
    println!("  serial oracle (same iteration, dense):        {want:.9}");
    println!("  simulated time {:.3} ms", out.max_time_ms());
    assert!(
        (lambda - want).abs() < 1e-9,
        "distributed and serial iterations must agree to rounding"
    );
    for r in &out.results {
        assert_eq!(r.0, nnz);
    }
}
